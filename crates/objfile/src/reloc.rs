//! Relocation records.
//!
//! These model the Alpha ECOFF relocations the paper leans on (§3): "References
//! to the GAT section must be marked for relocation... the AXP compilers
//! include links between an instruction that loads an address and the
//! subsequent instructions that use it." Concretely:
//!
//! * [`RelocKind::Literal`] marks an *address load* — a `ldq rx, d(gp)` whose
//!   displacement indexes a GAT slot; the linker fills in `d` once the GAT is
//!   laid out and the GP value chosen.
//! * [`RelocKind::LituseBase`] / [`RelocKind::LituseJsr`] mark instructions
//!   that *use* the register an address load produced, pointing back at the
//!   load. `Base` means a memory access through the address; `Jsr` means an
//!   indirect call to it. These links are what let OM know, without dataflow
//!   analysis, exactly which uses each address load feeds.
//! * [`RelocKind::Gpdisp`] marks the `ldah/lda` pair that establishes GP from
//!   a code address (procedure entry via PV, or the return point via RA).
//! * [`RelocKind::BrAddr`] marks a 21-bit PC-relative branch to a symbol.
//! * [`RelocKind::RefQuad`] marks a 64-bit absolute address in a data section
//!   (e.g. an initialized procedure variable).
//! * [`RelocKind::Gprel16`] marks a direct GP-relative 16-bit reference to a
//!   small-data symbol — the form OM-simple converts GAT loads *into*.

use crate::section::SecId;
use crate::symbol::SymId;
use std::fmt;

/// The kind-specific payload of a relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocKind {
    /// The instruction's 16-bit displacement selects GAT slot `lita` of this
    /// module; the loaded value is the slot's 64-bit address.
    Literal { lita: u32 },
    /// The instruction reads the register produced by the [`Literal`] address
    /// load at text offset `load_offset` and uses it as a memory base.
    ///
    /// [`Literal`]: RelocKind::Literal
    LituseBase { load_offset: u64 },
    /// The instruction is an indirect call through the register produced by
    /// the address load at text offset `load_offset`.
    LituseJsr { load_offset: u64 },
    /// The instruction consumes the *value* of the address load at
    /// `load_offset` in a way that cannot absorb a displacement (address
    /// arithmetic, storing the address, passing it as an argument). A load
    /// with any such use can be converted to a load-address operation but
    /// never nullified.
    LituseAddr { load_offset: u64 },
    /// This `ldah` and the `lda` at `offset + pair_offset` together add the
    /// 32-bit displacement `GP - addr(anchor)` to a register that holds the
    /// final address of text offset `anchor` at run time (the procedure entry
    /// for a prologue, the return point for an after-call reset). `gp_group`
    /// names whose GP is being established.
    Gpdisp {
        pair_offset: i64,
        anchor: u64,
        gp_group: u32,
    },
    /// 21-bit branch displacement to `sym`.
    BrAddr { sym: SymId, addend: i64 },
    /// 64-bit absolute address of `sym + addend` stored in a data section.
    RefQuad { sym: SymId, addend: i64 },
    /// 16-bit GP-relative displacement to `sym + addend` (small data).
    Gprel16 {
        sym: SymId,
        addend: i64,
        gp_group: u32,
    },
    /// The high half of a split GP-relative reference: the `ldah` gets the
    /// upper 16 bits of `sym + addend - GP` (with low-half sign compensation).
    /// This is what OM converts 32-bit-distant address loads into.
    GprelHigh {
        sym: SymId,
        addend: i64,
        gp_group: u32,
    },
    /// The low half: the instruction's displacement becomes
    /// `(sym + addend - GP) - (high << 16)` where `high` is computed as for
    /// the paired [`GprelHigh`](RelocKind::GprelHigh) with `hi_addend`.
    GprelLow {
        sym: SymId,
        addend: i64,
        hi_addend: i64,
        gp_group: u32,
    },
}

/// A relocation: a [`RelocKind`] applied at `offset` within section `sec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reloc {
    pub sec: SecId,
    pub offset: u64,
    pub kind: RelocKind,
}

impl Reloc {
    /// Convenience constructor for text-section relocations (the common case).
    pub fn text(offset: u64, kind: RelocKind) -> Reloc {
        Reloc { sec: SecId::Text, offset, kind }
    }
}

impl fmt::Display for Reloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}: ", self.sec, self.offset)?;
        match self.kind {
            RelocKind::Literal { lita } => write!(f, "LITERAL lita[{lita}]"),
            RelocKind::LituseBase { load_offset } => {
                write!(f, "LITUSE_BASE of load at {load_offset:#x}")
            }
            RelocKind::LituseJsr { load_offset } => {
                write!(f, "LITUSE_JSR of load at {load_offset:#x}")
            }
            RelocKind::LituseAddr { load_offset } => {
                write!(f, "LITUSE_ADDR of load at {load_offset:#x}")
            }
            RelocKind::Gpdisp { pair_offset, anchor, gp_group } => write!(
                f,
                "GPDISP pair at {pair_offset:+}, anchor {anchor:#x}, group {gp_group}"
            ),
            RelocKind::BrAddr { sym, addend } => write!(f, "BRADDR {sym}{addend:+}"),
            RelocKind::RefQuad { sym, addend } => write!(f, "REFQUAD {sym}{addend:+}"),
            RelocKind::Gprel16 { sym, addend, gp_group } => {
                write!(f, "GPREL16 {sym}{addend:+} (group {gp_group})")
            }
            RelocKind::GprelHigh { sym, addend, gp_group } => {
                write!(f, "GPRELHIGH {sym}{addend:+} (group {gp_group})")
            }
            RelocKind::GprelLow { sym, addend, hi_addend, gp_group } => {
                write!(f, "GPRELLOW {sym}{addend:+} (hi{hi_addend:+}, group {gp_group})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_constructor_targets_text() {
        let r = Reloc::text(8, RelocKind::Literal { lita: 3 });
        assert_eq!(r.sec, SecId::Text);
        assert_eq!(r.offset, 8);
    }

    #[test]
    fn display_is_readable() {
        let r = Reloc::text(4, RelocKind::LituseJsr { load_offset: 0 });
        assert_eq!(r.to_string(), ".text+0x4: LITUSE_JSR of load at 0x0");
        let g = Reloc::text(
            0,
            RelocKind::Gpdisp { pair_offset: 4, anchor: 0, gp_group: 2 },
        );
        assert!(g.to_string().contains("GPDISP"));
    }
}
