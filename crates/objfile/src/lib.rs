//! ECOFF-like relocatable object format for the OM reproduction.
//!
//! Modules carry encoded Alpha text, data sections, a typed GAT literal pool
//! (`.lita`), symbols with procedure boundaries and GP groups, and the
//! GAT-aware relocations (LITERAL / LITUSE / GPDISP and friends) that the
//! paper's link-time optimizer depends on. Archives provide `ld`-style
//! demand-driven member selection so pre-compiled library code flows into
//! links the way the paper's do.
//!
//! # Example
//!
//! ```
//! use om_objfile::{ModuleBuilder, RelocKind, Visibility};
//! use om_alpha::{Inst, Reg};
//!
//! # fn main() -> Result<(), om_objfile::ObjError> {
//! let mut b = ModuleBuilder::new("hello");
//! let callee = b.external("puts");
//! let slot = b.lita_slot(callee, 0);
//! let start = b.here();
//! let load = b.emit_reloc(Inst::ldq(Reg::PV, 0, Reg::GP), RelocKind::Literal { lita: slot });
//! b.emit_reloc(Inst::jsr(Reg::RA, Reg::PV), RelocKind::LituseJsr { load_offset: load });
//! b.emit(Inst::ret());
//! b.define_proc("main", start, 0, Visibility::Exported);
//! let module = b.finish()?;
//! let bytes = om_objfile::binary::write_module(&module);
//! assert_eq!(om_objfile::binary::read_module(&bytes)?, module);
//! # Ok(())
//! # }
//! ```

pub mod archive;
pub mod binary;
pub mod builder;
pub mod error;
pub mod module;
pub mod reloc;
pub mod section;
pub mod symbol;

pub use archive::Archive;
pub use builder::ModuleBuilder;
pub use error::ObjError;
pub use module::{LitaEntry, Module};
pub use reloc::{Reloc, RelocKind};
pub use section::{SecId, DATA_BASE, SECTION_ALIGN, TEXT_BASE};
pub use symbol::{SymId, Symbol, SymbolDef, Visibility};
