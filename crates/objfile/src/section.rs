//! Section identifiers and layout constants.
//!
//! The format follows the Alpha/OSF ECOFF conventions the paper relies on:
//! code in `.text`; initialized data split into `.data` and *small* data
//! `.sdata`; uninitialized data split into `.bss` and `.sbss`; and the
//! per-module global address table in `.lita` (the "literal pool" the linker
//! merges). Keeping small data in its own section is what lets the linker
//! place it next to the GAT where the GP can reach it — the paper notes the
//! conversion of GAT references to GP-relative references "is even more
//! effective if the compiler segregates the small data into its own data
//! section".

use std::fmt;

/// Identifies a byte-carrying section of a module or image.
///
/// `.lita` is not a [`SecId`]: in this format the GAT is typed (a list of
/// [`crate::module::LitaEntry`]) rather than raw bytes, because every slot is
/// exactly a 64-bit relocated address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecId {
    /// Executable code.
    Text,
    /// Initialized data too large (or explicitly unsuitable) for `.sdata`.
    Data,
    /// Small initialized data, placed within GP reach at link time.
    Sdata,
    /// Small zero-initialized data, placed within GP reach at link time.
    Sbss,
    /// Zero-initialized data.
    Bss,
}

impl SecId {
    /// All section ids in canonical layout order.
    pub const ALL: [SecId; 5] = [SecId::Text, SecId::Data, SecId::Sdata, SecId::Sbss, SecId::Bss];

    /// True for sections with no bytes in the object file (sized only).
    pub fn is_zero_fill(self) -> bool {
        matches!(self, SecId::Sbss | SecId::Bss)
    }

    /// True for the sections the linker places near the GAT so that the GP
    /// can address their contents directly.
    pub fn is_small(self) -> bool {
        matches!(self, SecId::Sdata | SecId::Sbss)
    }

    /// Conventional section name.
    pub fn name(self) -> &'static str {
        match self {
            SecId::Text => ".text",
            SecId::Data => ".data",
            SecId::Sdata => ".sdata",
            SecId::Sbss => ".sbss",
            SecId::Bss => ".bss",
        }
    }
}

impl fmt::Display for SecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Conventional base of the text segment on Alpha/OSF.
pub const TEXT_BASE: u64 = 0x1_2000_0000;

/// Conventional base of the data segment on Alpha/OSF.
pub const DATA_BASE: u64 = 0x1_4000_0000;

/// Default alignment of section starts within a segment.
pub const SECTION_ALIGN: u64 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_and_zero_fill_classification() {
        assert!(SecId::Sdata.is_small() && !SecId::Sdata.is_zero_fill());
        assert!(SecId::Sbss.is_small() && SecId::Sbss.is_zero_fill());
        assert!(SecId::Bss.is_zero_fill() && !SecId::Bss.is_small());
        assert!(!SecId::Text.is_small());
    }

    #[test]
    fn names_are_conventional() {
        assert_eq!(SecId::Text.to_string(), ".text");
        assert_eq!(SecId::Sdata.to_string(), ".sdata");
    }

    #[test]
    fn segment_bases_are_disjoint() {
        const { assert!(DATA_BASE > TEXT_BASE) };
    }
}
