//! Binary (de)serialization of modules and archives.
//!
//! The on-disk format is deliberately explicit — little-endian fields,
//! length-prefixed strings, one tag byte per enum — so that object files can
//! be written out by the compiler, stored in archives, and read back by the
//! linker or OM exactly the way the 1994 toolchain passed ECOFF objects
//! around. Round-tripping is property-tested.

use crate::error::ObjError;
use crate::module::{LitaEntry, Module};
use crate::reloc::{Reloc, RelocKind};
use crate::section::SecId;
use crate::symbol::{Symbol, SymbolDef, SymId, Visibility};
use crate::archive::Archive;

const MODULE_MAGIC: &[u8; 8] = b"OMOBJ01\0";
const ARCHIVE_MAGIC: &[u8; 8] = b"OMLIB01\0";

/// Byte-oriented writer.
struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Byte-oriented reader with bounds checking.
struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjError> {
        if self.pos + n > self.buf.len() {
            return Err(ObjError::BadFormat { what: "unexpected end of input".into() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ObjError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ObjError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ObjError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, ObjError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, ObjError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> Result<String, ObjError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| ObjError::BadFormat { what: "invalid utf-8 in string".into() })
    }
}

fn sec_tag(sec: SecId) -> u8 {
    match sec {
        SecId::Text => 0,
        SecId::Data => 1,
        SecId::Sdata => 2,
        SecId::Sbss => 3,
        SecId::Bss => 4,
    }
}

fn sec_from(tag: u8) -> Result<SecId, ObjError> {
    Ok(match tag {
        0 => SecId::Text,
        1 => SecId::Data,
        2 => SecId::Sdata,
        3 => SecId::Sbss,
        4 => SecId::Bss,
        _ => return Err(ObjError::BadFormat { what: format!("bad section tag {tag}") }),
    })
}

fn write_symbol(w: &mut W, s: &Symbol) {
    w.str(&s.name);
    w.u8(match s.vis {
        Visibility::Exported => 0,
        Visibility::Local => 1,
    });
    match &s.def {
        SymbolDef::Proc { offset, size, gp_group } => {
            w.u8(0);
            w.u64(*offset);
            w.u64(*size);
            w.u32(*gp_group);
        }
        SymbolDef::Data { sec, offset, size } => {
            w.u8(1);
            w.u8(sec_tag(*sec));
            w.u64(*offset);
            w.u64(*size);
        }
        SymbolDef::Common { size, align } => {
            w.u8(2);
            w.u64(*size);
            w.u64(*align);
        }
        SymbolDef::Extern => w.u8(3),
    }
}

fn read_symbol(r: &mut R) -> Result<Symbol, ObjError> {
    let name = r.str()?;
    let vis = match r.u8()? {
        0 => Visibility::Exported,
        1 => Visibility::Local,
        t => return Err(ObjError::BadFormat { what: format!("bad visibility tag {t}") }),
    };
    let def = match r.u8()? {
        0 => SymbolDef::Proc { offset: r.u64()?, size: r.u64()?, gp_group: r.u32()? },
        1 => SymbolDef::Data { sec: sec_from(r.u8()?)?, offset: r.u64()?, size: r.u64()? },
        2 => SymbolDef::Common { size: r.u64()?, align: r.u64()? },
        3 => SymbolDef::Extern,
        t => return Err(ObjError::BadFormat { what: format!("bad symbol tag {t}") }),
    };
    Ok(Symbol { name, vis, def })
}

fn write_reloc(w: &mut W, r: &Reloc) {
    w.u8(sec_tag(r.sec));
    w.u64(r.offset);
    match r.kind {
        RelocKind::Literal { lita } => {
            w.u8(0);
            w.u32(lita);
        }
        RelocKind::LituseBase { load_offset } => {
            w.u8(1);
            w.u64(load_offset);
        }
        RelocKind::LituseJsr { load_offset } => {
            w.u8(2);
            w.u64(load_offset);
        }
        RelocKind::LituseAddr { load_offset } => {
            w.u8(7);
            w.u64(load_offset);
        }
        RelocKind::Gpdisp { pair_offset, anchor, gp_group } => {
            w.u8(3);
            w.i64(pair_offset);
            w.u64(anchor);
            w.u32(gp_group);
        }
        RelocKind::BrAddr { sym, addend } => {
            w.u8(4);
            w.u32(sym.0);
            w.i64(addend);
        }
        RelocKind::RefQuad { sym, addend } => {
            w.u8(5);
            w.u32(sym.0);
            w.i64(addend);
        }
        RelocKind::Gprel16 { sym, addend, gp_group } => {
            w.u8(6);
            w.u32(sym.0);
            w.i64(addend);
            w.u32(gp_group);
        }
        RelocKind::GprelHigh { sym, addend, gp_group } => {
            w.u8(8);
            w.u32(sym.0);
            w.i64(addend);
            w.u32(gp_group);
        }
        RelocKind::GprelLow { sym, addend, hi_addend, gp_group } => {
            w.u8(9);
            w.u32(sym.0);
            w.i64(addend);
            w.i64(hi_addend);
            w.u32(gp_group);
        }
    }
}

fn read_reloc(r: &mut R) -> Result<Reloc, ObjError> {
    let sec = sec_from(r.u8()?)?;
    let offset = r.u64()?;
    let kind = match r.u8()? {
        0 => RelocKind::Literal { lita: r.u32()? },
        1 => RelocKind::LituseBase { load_offset: r.u64()? },
        2 => RelocKind::LituseJsr { load_offset: r.u64()? },
        3 => RelocKind::Gpdisp { pair_offset: r.i64()?, anchor: r.u64()?, gp_group: r.u32()? },
        4 => RelocKind::BrAddr { sym: SymId(r.u32()?), addend: r.i64()? },
        5 => RelocKind::RefQuad { sym: SymId(r.u32()?), addend: r.i64()? },
        6 => RelocKind::Gprel16 { sym: SymId(r.u32()?), addend: r.i64()?, gp_group: r.u32()? },
        7 => RelocKind::LituseAddr { load_offset: r.u64()? },
        8 => RelocKind::GprelHigh { sym: SymId(r.u32()?), addend: r.i64()?, gp_group: r.u32()? },
        9 => RelocKind::GprelLow {
            sym: SymId(r.u32()?),
            addend: r.i64()?,
            hi_addend: r.i64()?,
            gp_group: r.u32()?,
        },
        t => return Err(ObjError::BadFormat { what: format!("bad reloc tag {t}") }),
    };
    Ok(Reloc { sec, offset, kind })
}

/// Serializes a module.
pub fn write_module(m: &Module) -> Vec<u8> {
    let mut w = W(Vec::new());
    w.0.extend_from_slice(MODULE_MAGIC);
    w.str(&m.name);
    w.bytes(&m.text);
    w.bytes(&m.data);
    w.bytes(&m.sdata);
    w.u64(m.sbss_size);
    w.u64(m.bss_size);
    w.u64(m.lita.len() as u64);
    for e in &m.lita {
        w.u32(e.sym.0);
        w.i64(e.addend);
    }
    w.u64(m.symbols.len() as u64);
    for s in &m.symbols {
        write_symbol(&mut w, s);
    }
    w.u64(m.relocs.len() as u64);
    for r in &m.relocs {
        write_reloc(&mut w, r);
    }
    w.0
}

/// Deserializes a module and validates it.
///
/// # Errors
///
/// Returns [`ObjError::BadFormat`] for truncated or mistagged input and
/// [`ObjError::Malformed`] if the decoded module violates its invariants.
pub fn read_module(bytes: &[u8]) -> Result<Module, ObjError> {
    let mut r = R { buf: bytes, pos: 0 };
    if r.take(8)? != MODULE_MAGIC {
        return Err(ObjError::BadFormat { what: "bad module magic".into() });
    }
    let mut m = Module::new(r.str()?);
    m.text = r.bytes()?;
    m.data = r.bytes()?;
    m.sdata = r.bytes()?;
    m.sbss_size = r.u64()?;
    m.bss_size = r.u64()?;
    let nlita = r.u64()? as usize;
    for _ in 0..nlita {
        m.lita.push(LitaEntry { sym: SymId(r.u32()?), addend: r.i64()? });
    }
    let nsym = r.u64()? as usize;
    for _ in 0..nsym {
        m.symbols.push(read_symbol(&mut r)?);
    }
    let nrel = r.u64()? as usize;
    for _ in 0..nrel {
        m.relocs.push(read_reloc(&mut r)?);
    }
    m.validate()?;
    Ok(m)
}

/// Serializes an archive.
pub fn write_archive(a: &Archive) -> Vec<u8> {
    let mut w = W(Vec::new());
    w.0.extend_from_slice(ARCHIVE_MAGIC);
    w.str(&a.name);
    w.u64(a.members().len() as u64);
    for m in a.members() {
        w.bytes(&write_module(m));
    }
    w.0
}

/// Deserializes an archive (re-deriving the symbol index).
///
/// # Errors
///
/// Returns [`ObjError`] for malformed input or members.
pub fn read_archive(bytes: &[u8]) -> Result<Archive, ObjError> {
    let mut r = R { buf: bytes, pos: 0 };
    if r.take(8)? != ARCHIVE_MAGIC {
        return Err(ObjError::BadFormat { what: "bad archive magic".into() });
    }
    let mut a = Archive::new(r.str()?);
    let n = r.u64()? as usize;
    for _ in 0..n {
        let raw = r.bytes()?;
        a.add(read_module(&raw)?)?;
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::LitaEntry;
    use crate::symbol::Symbol;

    fn sample_module() -> Module {
        let mut m = Module::new("sample");
        m.text = vec![0; 24];
        m.data = vec![1, 2, 3, 4, 5, 6, 7, 8];
        m.sdata = vec![9; 8];
        m.sbss_size = 16;
        m.bss_size = 4096;
        m.symbols.push(Symbol::proc("main", 0, 24, 0));
        m.symbols.push(Symbol::external("helper"));
        m.symbols.push(Symbol::common("work", 800, 8).local());
        m.lita.push(LitaEntry { sym: SymId(1), addend: 0 });
        m.lita.push(LitaEntry { sym: SymId(2), addend: 16 });
        m.relocs.push(Reloc::text(0, RelocKind::Gpdisp { pair_offset: 4, anchor: 0, gp_group: 0 }));
        m.relocs.push(Reloc::text(8, RelocKind::Literal { lita: 0 }));
        m.relocs.push(Reloc::text(12, RelocKind::LituseJsr { load_offset: 8 }));
        m.relocs.push(Reloc {
            sec: SecId::Data,
            offset: 0,
            kind: RelocKind::RefQuad { sym: SymId(0), addend: 0 },
        });
        m.validate().unwrap();
        m
    }

    #[test]
    fn module_roundtrip() {
        let m = sample_module();
        let bytes = write_module(&m);
        assert_eq!(read_module(&bytes).unwrap(), m);
    }

    #[test]
    fn archive_roundtrip() {
        let mut a = Archive::new("libtest");
        a.add(sample_module()).unwrap();
        let bytes = write_archive(&a);
        let back = read_archive(&bytes).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(read_module(b"NOTANOBJ").is_err());
        assert!(read_archive(&write_module(&sample_module())).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = write_module(&sample_module());
        for cut in [0, 7, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(read_module(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_tag_rejected() {
        let mut bytes = write_module(&sample_module());
        let n = bytes.len();
        bytes[n - 1] = 0xFF; // clobber the last reloc's payload tail — reloc tag is earlier; clobber broadly
        // A flipped byte may or may not break decoding, but must never panic.
        let _ = read_module(&bytes);
    }
}
