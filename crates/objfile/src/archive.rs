//! Static library archives.
//!
//! An [`Archive`] is a named collection of modules with a symbol index, and
//! extraction works the way `ld` treats libraries: a member is pulled into
//! the link only if it defines a symbol that is still undefined. This is how
//! the reproduction gets the paper's key workload property — *pre-compiled*
//! library members (compiled long before the program, invisible to
//! compile-time interprocedural optimization) that OM nevertheless optimizes
//! "in exactly the same way that it handles user code".

use crate::error::ObjError;
use crate::module::Module;
use std::collections::{HashMap, HashSet};

/// A static library: an ordered set of modules plus a defined-symbol index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Archive {
    /// Archive name, e.g. `libstd`.
    pub name: String,
    members: Vec<Module>,
    /// Defined, exported symbol name → member index.
    index: HashMap<String, usize>,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new(name: impl Into<String>) -> Archive {
        Archive { name: name.into(), ..Archive::default() }
    }

    /// Adds a member, indexing its exported definitions.
    ///
    /// # Errors
    ///
    /// Returns [`ObjError::Malformed`] if the member fails validation.
    pub fn add(&mut self, module: Module) -> Result<(), ObjError> {
        module.validate()?;
        let idx = self.members.len();
        for sym in &module.symbols {
            if sym.is_defined() && sym.vis == crate::symbol::Visibility::Exported {
                self.index.entry(sym.name.clone()).or_insert(idx);
            }
        }
        self.members.push(module);
        Ok(())
    }

    /// The archive members in order.
    pub fn members(&self) -> &[Module] {
        &self.members
    }

    /// Looks up the member defining `symbol`.
    pub fn member_defining(&self, symbol: &str) -> Option<&Module> {
        self.index.get(symbol).map(|&i| &self.members[i])
    }

    /// Selects the members needed to satisfy `undefined`, transitively: a
    /// selected member's own undefined symbols are resolved against the
    /// archive too (libraries routinely call other library routines — in the
    /// paper's `spice`, half of all calls are library-to-library).
    ///
    /// Returns the selected members in archive order.
    pub fn select(&self, undefined: impl IntoIterator<Item = String>) -> Vec<&Module> {
        let mut needed: Vec<String> = undefined.into_iter().collect();
        let mut chosen: HashSet<usize> = HashSet::new();
        while let Some(name) = needed.pop() {
            let Some(&idx) = self.index.get(&name) else { continue };
            if !chosen.insert(idx) {
                continue;
            }
            let member = &self.members[idx];
            for sym in &member.symbols {
                if !sym.is_defined() {
                    needed.push(sym.name.clone());
                }
            }
        }
        let mut order: Vec<usize> = chosen.into_iter().collect();
        order.sort_unstable();
        order.into_iter().map(|i| &self.members[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn module_with(name: &str, defines: &[&str], needs: &[&str]) -> Module {
        let mut m = Module::new(name);
        m.text = vec![0; 4 * defines.len().max(1) * 2];
        for (i, d) in defines.iter().enumerate() {
            m.symbols.push(Symbol::proc(*d, 4 * i as u64, 4, 0));
        }
        for n in needs {
            m.symbols.push(Symbol::external(*n));
        }
        m
    }

    #[test]
    fn selection_is_demand_driven() {
        let mut ar = Archive::new("libstd");
        ar.add(module_with("sqrt", &["sqrt"], &[])).unwrap();
        ar.add(module_with("sin", &["sin"], &["sqrt"])).unwrap();
        ar.add(module_with("unused", &["tan"], &[])).unwrap();

        let picked = ar.select(["sin".to_string()]);
        let names: Vec<&str> = picked.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["sqrt", "sin"]); // transitive, archive order, no `unused`
    }

    #[test]
    fn unknown_symbols_are_ignored() {
        let ar = Archive::new("empty");
        assert!(ar.select(["nothing".to_string()]).is_empty());
    }

    #[test]
    fn member_defining_finds_first() {
        let mut ar = Archive::new("lib");
        ar.add(module_with("a", &["f"], &[])).unwrap();
        ar.add(module_with("b", &["f", "g"], &[])).unwrap();
        assert_eq!(ar.member_defining("f").unwrap().name, "a");
        assert_eq!(ar.member_defining("g").unwrap().name, "b");
        assert!(ar.member_defining("h").is_none());
    }

    #[test]
    fn invalid_member_rejected() {
        let mut ar = Archive::new("lib");
        let mut bad = module_with("bad", &["f"], &[]);
        bad.text.push(0); // ragged text
        assert!(ar.add(bad).is_err());
    }
}
