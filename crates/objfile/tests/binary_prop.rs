//! Property tests of the on-disk object format: random well-formed modules
//! must round-trip exactly, and arbitrary bytes must never panic the reader.
//!
//! Seeded randomized loops over `om_prng` (the workspace builds offline, so
//! no proptest); module shapes match what the original strategies generated.

use om_objfile::{
    binary, Archive, LitaEntry, Module, Reloc, RelocKind, SecId, SymId, Symbol, SymbolDef,
    Visibility,
};
use om_prng::StdRng;

fn ident(rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push((b'a' + rng.gen_range(0u8..26)) as char);
    for _ in 0..rng.gen_range(0usize..13) {
        let c = match rng.gen_range(0u8..38) {
            0..=25 => b'a' + rng.gen_range(0u8..26),
            26..=35 => b'0' + rng.gen_range(0u8..10),
            _ => b'_',
        };
        s.push(c as char);
    }
    s
}

/// A structurally valid module: procedures tile the text, relocations are in
/// range and sorted, lita entries name real symbols.
fn any_module(rng: &mut StdRng) -> Module {
    let name = ident(rng);
    let nproc = rng.gen_range(1usize..6);
    let next = rng.gen_range(0usize..5);
    let ncommon = rng.gen_range(0usize..4);
    let data8 = rng.gen_range(0usize..24);
    let sdata8 = rng.gen_range(0usize..16);

    let mut m = Module::new(name);
    // Each proc gets 4 instructions (16 bytes) of encodable words.
    let nop = om_alpha::encode(om_alpha::Inst::nop()).to_le_bytes();
    for _ in 0..nproc * 4 {
        m.text.extend_from_slice(&nop);
    }
    for p in 0..nproc {
        m.symbols.push(Symbol {
            name: format!("p{p}"),
            vis: if p % 2 == 0 { Visibility::Exported } else { Visibility::Local },
            def: SymbolDef::Proc { offset: 16 * p as u64, size: 16, gp_group: 0 },
        });
    }
    for e in 0..next {
        m.symbols.push(Symbol::external(format!("x{e}")));
    }
    for c in 0..ncommon {
        m.symbols.push(Symbol::common(format!("c{c}"), 8 * (c as u64 + 1), 8));
    }
    m.data = vec![0xAB; 8 * data8];
    m.sdata = vec![0xCD; 8 * sdata8];
    m.sbss_size = rng.gen_range(0u64..256) * 8;
    m.bss_size = rng.gen_range(0u64..256) * 8;

    // A lita entry per symbol (dedup not required at module level).
    for (i, _) in m.symbols.iter().enumerate() {
        m.lita.push(LitaEntry { sym: SymId(i as u32), addend: (i as i64) * 8 });
    }
    // One literal + lituse pair per proc, plus a gpdisp at entry.
    for p in 0..nproc {
        let base = 16 * p as u64;
        m.relocs.push(Reloc::text(
            base,
            RelocKind::Gpdisp { pair_offset: 4, anchor: base, gp_group: 0 },
        ));
        m.relocs.push(Reloc::text(
            base + 8,
            RelocKind::Literal { lita: (p % m.lita.len().max(1)) as u32 },
        ));
        m.relocs.push(Reloc::text(
            base + 12,
            RelocKind::LituseBase { load_offset: base + 8 },
        ));
    }
    if !m.data.is_empty() {
        m.relocs.push(Reloc {
            sec: SecId::Data,
            offset: 0,
            kind: RelocKind::RefQuad { sym: SymId(0), addend: 16 },
        });
    }
    m.validate().expect("generator produces valid modules");
    m
}

#[test]
fn modules_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x0B1EC7);
    for _ in 0..256 {
        let m = any_module(&mut rng);
        let bytes = binary::write_module(&m);
        let back = binary::read_module(&bytes).unwrap();
        assert_eq!(back, m);
    }
}

#[test]
fn archives_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA2C417E);
    for _ in 0..64 {
        let mut ar = Archive::new("lib");
        for i in 0..rng.gen_range(0usize..4) {
            let mut m = any_module(&mut rng);
            // Unique exported names across members to keep the index sane.
            for s in &mut m.symbols {
                if s.is_defined() && s.vis == Visibility::Exported {
                    s.name = format!("{}_{i}", s.name);
                }
            }
            ar.add(m).unwrap();
        }
        let bytes = binary::write_archive(&ar);
        assert_eq!(binary::read_archive(&bytes).unwrap(), ar);
    }
}

#[test]
fn reader_never_panics_on_corruption() {
    let mut rng = StdRng::seed_from_u64(0xC0221157);
    for _ in 0..256 {
        let m = any_module(&mut rng);
        let mut bytes = binary::write_module(&m);
        for _ in 0..rng.gen_range(1usize..8) {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= rng.gen_range(0u16..256) as u8;
        }
        let _ = binary::read_module(&bytes); // any Result is fine; no panic
    }
}

#[test]
fn reader_never_panics_on_noise() {
    let mut rng = StdRng::seed_from_u64(0x2015E);
    for _ in 0..512 {
        let bytes: Vec<u8> = (0..rng.gen_range(0usize..512))
            .map(|_| rng.gen_range(0u16..256) as u8)
            .collect();
        let _ = binary::read_module(&bytes);
        let _ = binary::read_archive(&bytes);
    }
}
