//! Property tests of the on-disk object format: random well-formed modules
//! must round-trip exactly, and arbitrary bytes must never panic the reader.

use om_objfile::{
    binary, Archive, LitaEntry, Module, Reloc, RelocKind, SecId, SymId, Symbol, SymbolDef,
    Visibility,
};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}"
}

/// A structurally valid module: procedures tile the text, relocations are in
/// range and sorted, lita entries name real symbols.
fn any_module() -> impl Strategy<Value = Module> {
    (
        ident(),
        1usize..6,   // procedures
        0usize..5,   // externs
        0usize..4,   // commons
        0usize..24,  // data bytes / 8
        0usize..16,  // sdata bytes / 8
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(name, nproc, next, ncommon, data8, sdata8, noise)| {
            let mut m = Module::new(name);
            // Each proc gets 4 instructions (16 bytes) of encodable words.
            let nop = om_alpha::encode(om_alpha::Inst::nop()).to_le_bytes();
            for _ in 0..nproc * 4 {
                m.text.extend_from_slice(&nop);
            }
            for p in 0..nproc {
                m.symbols.push(Symbol {
                    name: format!("p{p}"),
                    vis: if p % 2 == 0 { Visibility::Exported } else { Visibility::Local },
                    def: SymbolDef::Proc { offset: 16 * p as u64, size: 16, gp_group: 0 },
                });
            }
            for e in 0..next {
                m.symbols.push(Symbol::external(format!("x{e}")));
            }
            for c in 0..ncommon {
                m.symbols
                    .push(Symbol::common(format!("c{c}"), 8 * (c as u64 + 1), 8));
            }
            m.data = vec![0xAB; 8 * data8];
            m.sdata = vec![0xCD; 8 * sdata8];
            m.sbss_size = (noise.first().copied().unwrap_or(0) as u64) * 8;
            m.bss_size = (noise.get(1).copied().unwrap_or(0) as u64) * 8;

            // A lita entry per symbol (dedup not required at module level).
            for (i, _) in m.symbols.iter().enumerate() {
                m.lita.push(LitaEntry { sym: SymId(i as u32), addend: (i as i64) * 8 });
            }
            // One literal + lituse pair per proc, plus a gpdisp at entry.
            for p in 0..nproc {
                let base = 16 * p as u64;
                m.relocs.push(Reloc::text(
                    base,
                    RelocKind::Gpdisp { pair_offset: 4, anchor: base, gp_group: 0 },
                ));
                m.relocs.push(Reloc::text(
                    base + 8,
                    RelocKind::Literal { lita: (p % m.lita.len().max(1)) as u32 },
                ));
                m.relocs.push(Reloc::text(
                    base + 12,
                    RelocKind::LituseBase { load_offset: base + 8 },
                ));
            }
            if !m.data.is_empty() {
                m.relocs.push(Reloc {
                    sec: SecId::Data,
                    offset: 0,
                    kind: RelocKind::RefQuad { sym: SymId(0), addend: 16 },
                });
            }
            m.validate().expect("generator produces valid modules");
            m
        })
}

proptest! {
    #[test]
    fn modules_roundtrip(m in any_module()) {
        let bytes = binary::write_module(&m);
        let back = binary::read_module(&bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn archives_roundtrip(ms in proptest::collection::vec(any_module(), 0..4)) {
        let mut ar = Archive::new("lib");
        for (i, mut m) in ms.into_iter().enumerate() {
            // Unique exported names across members to keep the index sane.
            for s in &mut m.symbols {
                if s.is_defined() && s.vis == Visibility::Exported {
                    s.name = format!("{}_{i}", s.name);
                }
            }
            ar.add(m).unwrap();
        }
        let bytes = binary::write_archive(&ar);
        prop_assert_eq!(binary::read_archive(&bytes).unwrap(), ar);
    }

    #[test]
    fn reader_never_panics_on_corruption(m in any_module(), flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)) {
        let mut bytes = binary::write_module(&m);
        for (idx, v) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= v;
        }
        let _ = binary::read_module(&bytes); // any Result is fine; no panic
    }

    #[test]
    fn reader_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = binary::read_module(&bytes);
        let _ = binary::read_archive(&bytes);
    }
}
