//! Deliberate fault injection into the OM passes, for mutation-testing the
//! repo's safety nets (`omkill`, DESIGN.md §14).
//!
//! A [`FaultPlan`] names one *kind* of miscompile and one *site* (the n-th
//! opportunity the pass encounters, in deterministic pass order). Threading
//! it through [`OmOptions`] lets the mutation harness make the optimizer
//! itself emit wrong code mid-pass — a strictly harder class of fault than
//! post-hoc image corruption, because all the bookkeeping that emission and
//! relocation rely on is updated consistently with the lie.
//!
//! The plan is zero-cost when absent: every fault point is a single
//! `Option` check on a path that already branches.
//!
//! [`OmOptions`]: crate::pipeline::OmOptions

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// The kinds of wrong code a fault plan can make the optimizer emit. Each
/// variant is armed at exactly one pass (listed below), so candidate-site
/// numbering is deterministic for a given program and option set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `simple::transform_address_loads`: nullify an address load but skew
    /// the rewritten uses' addend by +8 — every consumer addresses 8 bytes
    /// past the intended object. The emitted relocations carry the skewed
    /// addend *consistently*, so the static verifier recomputes the same
    /// wrong answer and passes: only differential execution can catch it.
    AddendSkew,
    /// `simple::transform_address_loads`: delete a nullified load outright
    /// instead of leaving the no-op, while still counting it as a
    /// nullification — the instruction accounting no longer balances.
    NullifyDelete,
    /// `full::remove_prologues_and_convert_calls`: at a conversion that
    /// deletes the PV load *and* compensates by entering the callee at
    /// `entry+8` (skipping its GP-from-PV prologue), drop the compensation:
    /// branch to `entry+0`. The callee's GPDISP pair then rebuilds GP from
    /// whatever stale value PV happens to hold.
    PvLoadDrop,
    /// `full::remove_prologues_and_convert_calls`: emit a prologue-skipping
    /// `BSR target+8` for a callee whose first two instructions are real
    /// code (its GPDISP pair was deleted), silently skipping them.
    BsrSkew,
    /// `resched::schedule_proc`: after scheduling, swap the first adjacent
    /// truly-dependent instruction pair of the procedure — the consumer now
    /// reads its operand before the producer writes it.
    SchedSwap,
    /// `pgo::run_with`: insert an alignment UNOP *before* the entry GPDISP
    /// pair of a procedure that prologue-skipping `BSR +8` callers enter at
    /// a fixed offset — those callers now land mid-pair.
    EntryPad,
    /// `pipeline::optimize_and_link_with`: claim one deletion that never
    /// happened in the transformation statistics.
    CountSkew,
}

impl FaultKind {
    /// Every kind, in a stable order (the harness iterates this).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::AddendSkew,
        FaultKind::NullifyDelete,
        FaultKind::PvLoadDrop,
        FaultKind::BsrSkew,
        FaultKind::SchedSwap,
        FaultKind::EntryPad,
        FaultKind::CountSkew,
    ];

    /// Stable scorecard name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::AddendSkew => "fault-addend-skew",
            FaultKind::NullifyDelete => "fault-nullify-delete",
            FaultKind::PvLoadDrop => "fault-pv-drop",
            FaultKind::BsrSkew => "fault-bsr-skew",
            FaultKind::SchedSwap => "fault-sched-swap",
            FaultKind::EntryPad => "fault-entry-pad",
            FaultKind::CountSkew => "fault-count-skew",
        }
    }
}

/// One planned fault: inject `kind` at its `site`-th candidate. The
/// candidate cursor spans the whole pipeline run (including fixpoint
/// re-runs of a pass), and the fault fires at most once.
///
/// Equality ignores the runtime firing state, so [`OmOptions`] stays
/// comparable.
///
/// [`OmOptions`]: crate::pipeline::OmOptions
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub kind: FaultKind,
    pub site: usize,
    cursor: Arc<AtomicUsize>,
    fired: Arc<AtomicBool>,
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.site == other.site
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// A fresh, un-fired plan. Plans are single-use: build a new one per
    /// pipeline run (clones share the firing state).
    pub fn new(kind: FaultKind, site: usize) -> FaultPlan {
        FaultPlan {
            kind,
            site,
            cursor: Arc::new(AtomicUsize::new(0)),
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Reports a candidate site for `kind`; true exactly when this candidate
    /// is the planned one. Call this at every opportunity the pass sees —
    /// the internal cursor is what makes site numbering deterministic.
    pub fn arm(&self, kind: FaultKind) -> bool {
        if self.kind != kind {
            return false;
        }
        let at = self.cursor.fetch_add(1, Ordering::Relaxed);
        if at == self.site {
            self.fired.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// True once the planned site has been reached. A plan that never fires
    /// means the site index exceeds the program's candidate count — the
    /// harness treats such mutants as inert and excludes them.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// How many candidate sites for this plan's kind were encountered.
    pub fn candidates_seen(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }
}

/// `plan.arm(kind)` on an optional plan — the one-liner every fault point
/// uses so the `None` path stays a single branch.
pub fn armed(plan: Option<&FaultPlan>, kind: FaultKind) -> bool {
    plan.is_some_and(|p| p.arm(kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_the_planned_site() {
        let p = FaultPlan::new(FaultKind::AddendSkew, 2);
        let hits: Vec<bool> = (0..5).map(|_| p.arm(FaultKind::AddendSkew)).collect();
        assert_eq!(hits, vec![false, false, true, false, false]);
        assert!(p.fired());
        assert_eq!(p.candidates_seen(), 5);
    }

    #[test]
    fn other_kinds_do_not_advance_the_cursor() {
        let p = FaultPlan::new(FaultKind::BsrSkew, 0);
        assert!(!p.arm(FaultKind::AddendSkew));
        assert!(!p.fired());
        assert_eq!(p.candidates_seen(), 0);
        assert!(p.arm(FaultKind::BsrSkew));
        assert!(p.fired());
    }

    #[test]
    fn equality_ignores_firing_state() {
        let a = FaultPlan::new(FaultKind::CountSkew, 1);
        let b = FaultPlan::new(FaultKind::CountSkew, 1);
        assert!(!a.arm(FaultKind::CountSkew));
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::new(FaultKind::CountSkew, 2));
    }
}
