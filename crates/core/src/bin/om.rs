//! `om` — the optimizing linker (the paper's tool, as a command).
//!
//! ```text
//! om [-o OUT.exe] [--level none|simple|full|full-sched] [--stats]
//!    [--verify] [--profile-use PROF.json] [--preemptible SYMBOL]...
//!    [--trace-json TRACE.json] [--trace-summary]
//!    FILE.o... [LIB.a...]
//! ```
//!
//! `--preemptible` marks a symbol as dynamically bindable: every reference
//! to it stays fully conservative (the paper's shared-library semantics).
//! `--verify` re-checks the transformed program and the linked image
//! against OM's structural invariants (branch bounds, GAT reach, GPDISP
//! pairing, LITUSE links, segment geometry, stats accounting) and fails
//! the link on any violation.
//! `--profile-use` reads an execution profile written by `asim --profile`
//! and enables profile-guided layout: procedures reorder hot-first by call
//! count and only hot backward-branch targets earn alignment UNOPs. It
//! implies `--level full-sched` (the only level that lays code out).
//!
//! `--trace-json` records the link as a chrome://tracing trace-event file:
//! one complete event per pipeline phase and transformation pass, with
//! per-pass counter deltas attached, plus the deterministic counter map
//! (`omtrace check` validates the result in CI). `--trace-summary` prints
//! the same data as a table on stdout. Tracing observes the link without
//! participating in it: the linked image is byte-identical either way.
//!
//! Replaces the standard link step: translates the whole program to symbolic
//! form, applies the requested level of address-calculation optimization,
//! and writes the linked executable. `--stats` prints the Figure 3–5
//! counters for this program.

use om_core::{optimize_and_link_with, OmLevel, OmOptions, Profile};
use om_objfile::binary;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut objects = Vec::new();
    let mut libs = Vec::new();
    let mut out = PathBuf::from("a.exe");
    let mut level = OmLevel::Full;
    let mut stats = false;
    let mut trace_json: Option<PathBuf> = None;
    let mut trace_summary = false;
    let mut options = OmOptions::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                out = PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("om: -o needs a path");
                    exit(2);
                }));
            }
            "--level" => {
                i += 1;
                level = match args.get(i).map(String::as_str) {
                    Some("none") => OmLevel::None,
                    Some("simple") => OmLevel::Simple,
                    Some("full") => OmLevel::Full,
                    Some("full-sched") => OmLevel::FullSched,
                    other => {
                        eprintln!("om: unknown level {other:?}");
                        exit(2);
                    }
                };
            }
            "--stats" => stats = true,
            "--verify" => options.verify = true,
            "--trace-json" => {
                i += 1;
                trace_json = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("om: --trace-json needs a path");
                    exit(2);
                })));
            }
            "--trace-summary" => trace_summary = true,
            "--profile-use" => {
                i += 1;
                let f = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("om: --profile-use needs a profile path");
                    exit(2);
                });
                let text = std::fs::read_to_string(&f).unwrap_or_else(|e| {
                    eprintln!("om: cannot read {f}: {e}");
                    exit(1);
                });
                options.profile = Some(Profile::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("om: {f}: {e}");
                    exit(1);
                }));
            }
            "--preemptible" => {
                i += 1;
                options.preemptible.push(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("om: --preemptible needs a symbol name");
                    exit(2);
                }));
            }
            f if !f.starts_with('-') => {
                let bytes = std::fs::read(f).unwrap_or_else(|e| {
                    eprintln!("om: cannot read {f}: {e}");
                    exit(1);
                });
                if f.ends_with(".a") {
                    libs.push(binary::read_archive(&bytes).unwrap_or_else(|e| {
                        eprintln!("om: {f}: {e}");
                        exit(1);
                    }));
                } else {
                    objects.push(binary::read_module(&bytes).unwrap_or_else(|e| {
                        eprintln!("om: {f}: {e}");
                        exit(1);
                    }));
                }
            }
            other => {
                eprintln!("om: unknown option {other}");
                exit(2);
            }
        }
        i += 1;
    }
    if objects.is_empty() {
        eprintln!("usage: om [-o OUT.exe] [--level none|simple|full|full-sched] [--stats] [--verify] [--profile-use PROF.json] [--trace-json TRACE.json] [--trace-summary] FILE.o... [LIB.a...]");
        exit(2);
    }
    // PGO layout only exists at the scheduling level, regardless of flag order.
    if options.profile.is_some() {
        level = OmLevel::FullSched;
    }

    let trace = (trace_json.is_some() || trace_summary).then(om_obs::Trace::new);
    let guard = trace.as_ref().map(om_obs::Trace::install);
    let result = optimize_and_link_with(&objects, &libs, level, &options);
    drop(guard);
    if let Some(t) = &trace {
        if let Some(path) = &trace_json {
            let json = t.chrome_json("om");
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("om: cannot write {}: {e}", path.display());
                exit(1);
            }
            eprintln!("om: wrote trace {}", path.display());
        }
        if trace_summary {
            print!("{}", t.summary());
        }
    }

    match result {
        Ok(output) => {
            std::fs::write(&out, output.image.to_bytes()).unwrap();
            eprintln!(
                "om: wrote {} ({}, text {} bytes)",
                out.display(),
                level.name(),
                output.link.text_bytes
            );
            if let Some(report) = &output.verify {
                eprintln!("om: verify OK ({} checks)", report.checks);
            }
            if stats {
                let s = output.stats;
                let (cv, nu) = s.addr_load_fractions();
                println!("instructions:   {} before, {} nullified, {} deleted ({:.1}% removed)",
                    s.insts_before, s.insts_nullified, s.insts_deleted,
                    100.0 * s.inst_fraction_removed());
                println!("address loads:  {} total, {:.1}% converted, {:.1}% nullified",
                    s.addr_loads_total, 100.0 * cv, 100.0 * nu);
                println!("calls:          {} total ({} indirect), {} JSR->BSR",
                    s.calls_total, s.calls_indirect, s.calls_jsr_to_bsr);
                println!("  PV loads:     {} -> {}", s.calls_pv_before, s.calls_pv_after);
                println!("  GP resets:    {} -> {}", s.calls_gp_reset_before, s.calls_gp_reset_after);
                println!("GAT:            {} -> {} slots ({:.1}%)",
                    s.gat_slots_before, s.gat_slots_after, 100.0 * s.gat_ratio());
                if s.unops_inserted > 0 {
                    println!("alignment:      {} UNOPs inserted", s.unops_inserted);
                }
            }
        }
        Err(e) => {
            eprintln!("om: {e}");
            exit(1);
        }
    }
}
