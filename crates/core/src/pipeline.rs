//! The OM driver: load → translate to symbolic form → transform → emit →
//! link. This is the "optimizing linker" of §4 — it replaces the standard
//! link step entirely.

use crate::analysis::{call_sites, CallKind, Snapshot};
use crate::cache::OmCaches;
use crate::hash::{archive_hash, link_key, module_hash, ContentHash};
use crate::stats::OmStats;
use crate::sym::{resolve_symbolic, translate_module, InstId, LocalSymModule, OmError, SymProgram};
use om_linker::{build_symbol_table, link_modules, select_modules, Image, LayoutOpts, LinkStats};
use om_objfile::{Archive, Module};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of real OM pipeline executions (cache hits in
/// [`optimize_and_link_cached`] do not count). The evaluation harness and
/// the relink-cache tests use this counter to prove each unique
/// `(benchmark, mode, level)` configuration runs at most once per
/// invocation.
static PIPELINE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Total [`optimize_and_link_with`] executions in this process so far.
pub fn pipeline_runs() -> u64 {
    PIPELINE_RUNS.load(Ordering::Relaxed)
}

/// Per-call-site bookkeeping: `(needs PV load, needs GP reset)`, keyed by
/// `(module, proc, jsr instruction id)`. Populated before transformation and
/// updated as OM removes bookkeeping code; summed for Figure 4.
pub type CallBook = HashMap<(usize, usize, InstId), (bool, bool)>;

/// The optimization level applied at link time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmLevel {
    /// Pass-through: translate to symbolic form and back, no transformation
    /// (the paper's "OM no opt" build-time row).
    None,
    /// No code motion, nullification to no-ops.
    Simple,
    /// Full transformation: deletion, reordering, GAT reduction.
    Full,
    /// OM-full plus final rescheduling with quadword alignment.
    FullSched,
}

impl OmLevel {
    /// Every level, in ascending optimization order. The single source of
    /// truth for iteration: figures that measure a subset slice this table
    /// (e.g. `&OmLevel::ALL[1..]` for the levels that transform code).
    pub const ALL: [OmLevel; 4] =
        [OmLevel::None, OmLevel::Simple, OmLevel::Full, OmLevel::FullSched];

    /// This level's position in [`OmLevel::ALL`] (dense, for result tables).
    pub fn index(self) -> usize {
        match self {
            OmLevel::None => 0,
            OmLevel::Simple => 1,
            OmLevel::Full => 2,
            OmLevel::FullSched => 3,
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            OmLevel::None => "no opt",
            OmLevel::Simple => "OM-simple",
            OmLevel::Full => "OM-full",
            OmLevel::FullSched => "OM-full w/sched",
        }
    }
}

/// Ablation and policy knobs for the transformations (defaults reproduce the
/// paper's OM; the `ablations` harness toggles them one at a time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmOptions {
    /// Sort common symbols by size next to the GAT (an OM-simple layout
    /// improvement over the standard linker).
    pub sort_commons: bool,
    /// Quadword-align backward-branch targets during rescheduling.
    pub align_backward_targets: bool,
    /// GAT-reduction fixpoint budget (1 = a single pass, no re-layout).
    pub max_rounds: usize,
    /// Symbols that dynamic linking may preempt (the paper's §6 discussion:
    /// OM "does not currently support calls to shared libraries [but] there
    /// is no fundamental problem with doing so ... calls to dynamically
    /// linked library routines cannot be optimized as statically linked
    /// calls can"). Every reference to a listed name stays fully
    /// conservative: no JSR→BSR, no PV-load or GP-reset removal, no prologue
    /// deletion, no address-load conversion.
    pub preemptible: Vec<String>,
    /// Verify the transformed program and linked image against the
    /// structural invariants of [`crate::verify`]; any violation fails the
    /// link with [`OmError::Verify`]. The passing report is returned in
    /// [`OmOutput::verify`].
    pub verify: bool,
    /// An execution profile for profile-guided layout. Only
    /// [`OmLevel::FullSched`] consults it: rescheduling runs as usual, then
    /// [`crate::pgo`] reorders procedures by call frequency and aligns only
    /// hot backward-branch targets (replacing the blind alignment pass).
    pub profile: Option<crate::profile::Profile>,
    /// Minimum profiled execution count for a backward-branch target to be
    /// considered hot (and earn alignment UNOPs) under profile-guided
    /// layout. The default, 1, skips only never-executed targets.
    pub pgo_hot_min: u64,
    /// Deliberate miscompilation for mutation testing ([`crate::fault`],
    /// the `omkill` harness). `None` — the only value real links ever use —
    /// costs a single branch per fault point.
    pub fault: Option<crate::fault::FaultPlan>,
}

impl Default for OmOptions {
    fn default() -> Self {
        OmOptions {
            sort_commons: true,
            align_backward_targets: true,
            max_rounds: 8,
            preemptible: Vec::new(),
            verify: false,
            profile: None,
            pgo_hot_min: 1,
            fault: None,
        }
    }
}

/// Result of an optimizing link.
#[derive(Debug, Clone)]
pub struct OmOutput {
    pub image: Image,
    pub stats: OmStats,
    pub link: LinkStats,
    /// The verification report, when [`OmOptions::verify`] was requested
    /// (always passing: violations abort the link instead).
    pub verify: Option<crate::verify::VerifyReport>,
}

/// The intermediate link products behind an [`OmOutput`]: exactly what
/// [`crate::verify::verify_linked`] needs to re-check an image after the
/// fact. The mutation harness corrupts a copy of the image and replays the
/// verifier against these unchanged artifacts.
#[derive(Debug, Clone)]
pub struct Emitted {
    /// The transformed modules, as emitted for the final link.
    pub modules: Vec<Module>,
    /// Symbol table over [`Emitted::modules`].
    pub symtab: om_linker::SymbolTable,
    /// The layout the final link used.
    pub layout: om_linker::ProgramLayout,
}

/// Counts the pre-transformation statistics.
fn collect_before(
    program: &SymProgram,
    snap: &Snapshot,
    stats: &mut OmStats,
    book: &mut CallBook,
) {
    stats.insts_before = program.inst_count();
    stats.gat_slots_before = snap.gat_slots();
    for (mi, m) in program.modules.iter().enumerate() {
        for (pi, p) in m.procs.iter().enumerate() {
            stats.addr_loads_total += crate::analysis::literal_loads(p).len();
            for s in call_sites(p) {
                stats.calls_total += 1;
                let jsr_id = p.insts[s.at].id;
                let (pv, reset) = match s.kind {
                    CallKind::DirectJsr { .. } => (true, s.gp_reset.is_some()),
                    CallKind::Bsr { .. } => (false, s.gp_reset.is_some()),
                    CallKind::Indirect => {
                        stats.calls_indirect += 1;
                        (true, s.gp_reset.is_some())
                    }
                };
                if pv {
                    stats.calls_pv_before += 1;
                }
                if reset {
                    stats.calls_gp_reset_before += 1;
                }
                book.insert((mi, pi, jsr_id), (pv, reset));
            }
        }
    }
}

/// Performs an optimizing link of `objects` (+ libraries) at `level`.
///
/// Borrows the input modules: one build can be optimized at every level
/// without cloning the module list per run.
///
/// # Errors
///
/// Returns [`OmError`] for malformed input or link failures.
pub fn optimize_and_link(
    objects: &[Module],
    libs: &[Archive],
    level: OmLevel,
) -> Result<OmOutput, OmError> {
    optimize_and_link_with(objects, libs, level, &OmOptions::default())
}

/// [`optimize_and_link`] with explicit ablation options.
///
/// # Errors
///
/// Returns [`OmError`] for malformed input or link failures.
pub fn optimize_and_link_with(
    objects: &[Module],
    libs: &[Archive],
    level: OmLevel,
    options: &OmOptions,
) -> Result<OmOutput, OmError> {
    optimize_and_link_artifacts(objects, libs, level, options).map(|(out, _)| out)
}

/// [`optimize_and_link_with`], additionally returning the [`Emitted`]
/// artifacts of the final link (for post-hoc image verification — the
/// mutation harness's image mutators are built on this).
///
/// # Errors
///
/// Returns [`OmError`] for malformed input or link failures.
pub fn optimize_and_link_artifacts(
    objects: &[Module],
    libs: &[Archive],
    level: OmLevel,
    options: &OmOptions,
) -> Result<(OmOutput, Emitted), OmError> {
    run_pipeline(objects, libs, level, options, None)
}

/// [`optimize_and_link_with`] through a shared [`OmCaches`]: the whole link
/// is served from the link cache when its content key matches, and on a
/// link-cache miss each module's translation artifact is fetched from (or
/// inserted into) the per-module cache. Returns the output and whether the
/// *link* was a cache hit.
///
/// Byte-identical to the uncached pipeline by construction: cached values
/// are exactly what the uncached computation produced for identical inputs.
///
/// # Errors
///
/// Returns [`OmError`] for malformed input or link failures. Errors are
/// never cached — a failed request releases its cache reservation.
pub fn optimize_and_link_cached(
    objects: &[Module],
    libs: &[Archive],
    level: OmLevel,
    options: &OmOptions,
    caches: &OmCaches,
) -> Result<(Arc<OmOutput>, bool), OmError> {
    let lib_hashes: Vec<ContentHash> = libs.iter().map(archive_hash).collect();
    optimize_and_link_keyed(objects, libs, &lib_hashes, level, options, caches)
}

/// [`optimize_and_link_cached`] with the library digests precomputed — a
/// long-running server hashes its archives once, not per request.
///
/// # Errors
///
/// See [`optimize_and_link_cached`].
pub fn optimize_and_link_keyed(
    objects: &[Module],
    libs: &[Archive],
    lib_hashes: &[ContentHash],
    level: OmLevel,
    options: &OmOptions,
    caches: &OmCaches,
) -> Result<(Arc<OmOutput>, bool), OmError> {
    let module_hashes: Vec<ContentHash> = objects.iter().map(module_hash).collect();
    let key = link_key(&module_hashes, lib_hashes, level, options);
    caches
        .links
        .get_or_try(key, || {
            run_pipeline(objects, libs, level, options, Some(caches)).map(|(out, _)| out)
        })
        .map(|(out, hit)| (out, hit))
}

fn run_pipeline(
    objects: &[Module],
    libs: &[Archive],
    level: OmLevel,
    options: &OmOptions,
    caches: Option<&OmCaches>,
) -> Result<(OmOutput, Emitted), OmError> {
    PIPELINE_RUNS.fetch_add(1, Ordering::Relaxed);
    let mut pipeline_span = om_obs::span("pipeline");
    om_obs::count("pipeline.runs", 1);
    let modules = {
        let _s = om_obs::span("select");
        select_modules(objects, libs)?
    };
    pipeline_span.arg("modules", modules.len() as u64);
    om_obs::count("pipeline.modules", modules.len() as u64);
    let symtab = build_symbol_table(&modules)?;
    let mut program = {
        let locals_span = om_obs::span("pass.translate");
        om_obs::count("pass.translate.modules", modules.len() as u64);
        match caches {
            None => {
                let locals = modules
                    .iter()
                    .map(translate_module)
                    .collect::<Result<Vec<LocalSymModule>, _>>()?;
                drop(locals_span);
                let _s = om_obs::span("pass.resolve");
                resolve_symbolic(&locals, &symtab)
            }
            Some(c) => {
                // Per-module translation through the shared cache: an edited
                // module re-translates; everything else is reused by content.
                let locals = modules
                    .iter()
                    .map(|m| {
                        c.modules
                            .get_or_try(module_hash(m), || translate_module(m))
                            .map(|(v, _)| v)
                    })
                    .collect::<Result<Vec<Arc<LocalSymModule>>, OmError>>()?;
                drop(locals_span);
                let _s = om_obs::span("pass.resolve");
                resolve_symbolic(&locals, &symtab)
            }
        }
    };

    let mut stats = OmStats::default();
    let mut book: CallBook = HashMap::new();
    let snap0 = Snapshot::capture(&program)?;
    collect_before(&program, &snap0, &mut stats, &mut book);
    drop(snap0);

    match level {
        OmLevel::None => {}
        OmLevel::Simple => crate::simple::run_with(&mut program, &mut stats, &mut book, options)?,
        OmLevel::Full => crate::full::run_with(&mut program, &mut stats, &mut book, options)?,
        OmLevel::FullSched => {
            crate::full::run_with(&mut program, &mut stats, &mut book, options)?;
            match &options.profile {
                None => {
                    let m = crate::obs::PassMeter::begin("resched", &stats);
                    crate::resched::run_with(
                        &mut program,
                        &mut stats,
                        options.align_backward_targets,
                        options.fault.as_ref(),
                    );
                    m.end(&stats);
                }
                Some(profile) => {
                    // Schedule without the blind alignment pass; the PGO
                    // layer reorders procedures and aligns hot targets only.
                    let m = crate::obs::PassMeter::begin("resched", &stats);
                    crate::resched::run_with(&mut program, &mut stats, false, options.fault.as_ref());
                    m.end(&stats);
                    let m = crate::obs::PassMeter::begin("pgo", &stats);
                    crate::pgo::run_with(&mut program, &mut stats, profile, options);
                    m.end(&stats);
                }
            }
        }
    }

    // Derived counters.
    stats.calls_pv_after = book.values().filter(|&&(pv, _)| pv).count();
    stats.calls_gp_reset_after = book.values().filter(|&&(_, reset)| reset).count();

    if crate::fault::armed(options.fault.as_ref(), crate::fault::FaultKind::CountSkew) {
        stats.insts_deleted += 1;
    }

    // Final link with OM's layout policy.
    let final_modules = {
        let _s = om_obs::span("emit");
        crate::sym::emit_all(&program)?
    };
    stats.gat_slots_after = {
        let st = build_symbol_table(&final_modules)?;
        om_linker::layout(&final_modules, &st, &LayoutOpts { sort_commons: options.sort_commons })?
            .gat_slots
    };
    let link_opts = LayoutOpts { sort_commons: level != OmLevel::None && options.sort_commons };
    let link_span = om_obs::span("link");
    let (image, link) = link_modules(&final_modules, &[], &link_opts).map_err(OmError::Link)?;

    // The layout the final link saw, recomputed for post-hoc verification.
    let symtab = build_symbol_table(&final_modules)?;
    let layout = om_linker::layout(&final_modules, &symtab, &link_opts)?;
    drop(link_span);
    if om_obs::enabled() {
        om_obs::count("pipeline.image_bytes", image.to_bytes().len() as u64);
    }

    let verify = if options.verify {
        let _s = om_obs::span("verify");
        let mut report = crate::verify::verify_sym(&program);
        report.merge(crate::verify::verify_stats(&program, &stats));
        report.merge(crate::verify::verify_linked(&final_modules, &symtab, &layout, &image));
        if !report.is_ok() {
            return Err(OmError::Verify {
                checks: report.checks,
                violations: report.violations,
            });
        }
        Some(report)
    } else {
        None
    };

    let emitted = Emitted { modules: final_modules, symtab, layout };
    Ok((OmOutput { image, stats, link, verify }, emitted))
}
