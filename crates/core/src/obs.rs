//! Pass-level observability: spans and deterministic counter deltas.
//!
//! Each transformation pass runs between two snapshots of the (Copy)
//! [`OmStats`] record; the difference is emitted as `pass.<name>.<field>`
//! counters on the installed [`om_obs::Trace`] and as span arguments. A
//! delta can be *negative* — `delete_nops` reclassifies nullified
//! instructions as deletions — so negative magnitudes go to a separate
//! `pass.<name>.<field>.neg` counter and reconciliation sums signed:
//! `Σ pos − Σ neg == OmStats total`. [`reconcile`] performs exactly that
//! check; the trace tests and the bench `passes` figure both use it.
//!
//! Everything here is inert (no allocation, no lock) when no trace is
//! installed on the current thread.

use crate::stats::OmStats;
use std::collections::BTreeMap;

type Get = fn(&OmStats) -> usize;

/// The [`OmStats`] fields transformation passes mutate, with accessors.
/// Fields set before the passes run (`*_before`, `*_total`) or derived
/// afterwards (`*_after`) are deliberately absent: per-pass deltas over this
/// table sum exactly to the final stats because these fields start at zero
/// and change only inside metered passes.
pub const DELTA_FIELDS: &[(&str, Get)] = &[
    ("insts_nullified", |s| s.insts_nullified),
    ("insts_deleted", |s| s.insts_deleted),
    ("unops_inserted", |s| s.unops_inserted),
    ("addr_loads_converted", |s| s.addr_loads_converted),
    ("addr_loads_nullified", |s| s.addr_loads_nullified),
    ("calls_jsr_to_bsr", |s| s.calls_jsr_to_bsr),
    ("pgo_procs_moved", |s| s.pgo_procs_moved),
    ("pgo_targets_hot", |s| s.pgo_targets_hot),
    ("pgo_targets_cold", |s| s.pgo_targets_cold),
];

/// Meters one pass: a `pass.<name>` span plus signed counter deltas over
/// [`DELTA_FIELDS`]. Create with [`PassMeter::begin`] before the pass and
/// call [`PassMeter::end`] with the stats after it.
pub struct PassMeter {
    span: om_obs::Span,
    name: &'static str,
    before: OmStats,
}

impl PassMeter {
    /// Opens the pass span and snapshots the stats. Inert when no trace is
    /// installed.
    pub fn begin(name: &'static str, stats: &OmStats) -> PassMeter {
        let span = if om_obs::enabled() {
            om_obs::span(&format!("pass.{name}"))
        } else {
            om_obs::span("")
        };
        PassMeter { span, name, before: *stats }
    }

    /// Closes the span, recording each nonzero field delta as a span
    /// argument and a `pass.<name>.<field>[.neg]` counter.
    pub fn end(mut self, after: &OmStats) {
        if !om_obs::enabled() {
            return;
        }
        for (field, get) in DELTA_FIELDS {
            let delta = get(after) as i64 - get(&self.before) as i64;
            if delta > 0 {
                om_obs::count(&format!("pass.{}.{field}", self.name), delta as u64);
                self.span.arg(field, delta as u64);
            } else if delta < 0 {
                let mag = delta.unsigned_abs();
                om_obs::count(&format!("pass.{}.{field}.neg", self.name), mag);
                self.span.arg(&format!("{field}.neg"), mag);
            }
        }
    }
}

/// Checks that the per-pass counter deltas in `counters` sum (signed) to
/// the totals in `stats`, field by field. Returns the per-field signed sums
/// on success.
///
/// # Errors
///
/// Describes the first field whose pass deltas do not reconcile.
pub fn reconcile(
    counters: &BTreeMap<String, u64>,
    stats: &OmStats,
) -> Result<BTreeMap<&'static str, i64>, String> {
    let mut sums = BTreeMap::new();
    for (field, get) in DELTA_FIELDS {
        let mut sum = 0i64;
        for (k, &v) in counters {
            if !k.starts_with("pass.") {
                continue;
            }
            if k.ends_with(&format!(".{field}")) {
                sum += v as i64;
            } else if k.ends_with(&format!(".{field}.neg")) {
                sum -= v as i64;
            }
        }
        let total = get(stats) as i64;
        if sum != total {
            return Err(format!(
                "field `{field}`: pass deltas sum to {sum}, OmStats total is {total}"
            ));
        }
        sums.insert(*field, sum);
    }
    Ok(sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_obs::Trace;

    #[test]
    fn meter_emits_signed_deltas_that_reconcile() {
        let t = Trace::new();
        let mut stats = OmStats::default();
        {
            let _g = t.install();
            let m = PassMeter::begin("convert", &stats);
            stats.insts_nullified += 5;
            stats.addr_loads_converted += 2;
            m.end(&stats);
            let m = PassMeter::begin("nullify", &stats);
            stats.insts_nullified -= 3; // reclassified ...
            stats.insts_deleted += 3; // ... as deletions
            m.end(&stats);
        }
        let counters = t.counters();
        assert_eq!(counters.get("pass.convert.insts_nullified"), Some(&5));
        assert_eq!(counters.get("pass.nullify.insts_nullified.neg"), Some(&3));
        assert_eq!(counters.get("pass.nullify.insts_deleted"), Some(&3));
        let sums = reconcile(&counters, &stats).unwrap();
        assert_eq!(sums.get("insts_nullified"), Some(&2));
        assert_eq!(sums.get("insts_deleted"), Some(&3));
    }

    #[test]
    fn reconcile_flags_a_skewed_total() {
        let t = Trace::new();
        let mut stats = OmStats::default();
        {
            let _g = t.install();
            let m = PassMeter::begin("convert", &stats);
            stats.insts_deleted += 1;
            m.end(&stats);
        }
        stats.insts_deleted += 1; // mutated outside any metered pass
        let err = reconcile(&t.counters(), &stats).unwrap_err();
        assert!(err.contains("insts_deleted"), "{err}");
    }

    #[test]
    fn meter_is_inert_without_a_trace() {
        let mut stats = OmStats::default();
        let m = PassMeter::begin("convert", &stats);
        stats.insts_deleted += 7;
        m.end(&stats); // must not panic or record anywhere
    }
}
