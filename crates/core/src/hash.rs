//! Content hashing for the incremental relink cache.
//!
//! `omd` keys every per-module artifact by a cryptographic digest of the
//! module's serialized bytes, and every whole-link result by the digests of
//! all participating inputs plus a canonical fingerprint of the
//! [`OmOptions`] in effect — the WHOPR-style "only re-analyze what changed"
//! discipline. The digest is BLAKE2s-256 (RFC 7693), implemented here by
//! hand: the workspace builds fully offline, so no external crypto crate.
//!
//! [`OmOptions`]: crate::pipeline::OmOptions

use crate::pipeline::{OmLevel, OmOptions};
use om_objfile::{binary, Archive, Module};
use std::fmt;

/// BLAKE2s round constants: the initialization vector (shared with SHA-256).
const IV: [u32; 8] = [
    0x6A09_E667, 0xBB67_AE85, 0x3C6E_F372, 0xA54F_F53A,
    0x510E_527F, 0x9B05_688C, 0x1F83_D9AB, 0x5BE0_CD19,
];

/// Message schedule permutations for the 10 rounds.
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

/// An incremental BLAKE2s-256 hasher.
pub struct Blake2s {
    h: [u32; 8],
    /// Bytes hashed so far (the `t` counter of the spec).
    t: u64,
    buf: [u8; 64],
    buflen: usize,
}

impl Default for Blake2s {
    fn default() -> Self {
        Blake2s::new()
    }
}

impl Blake2s {
    /// A fresh hasher for a 32-byte unkeyed digest.
    pub fn new() -> Blake2s {
        let mut h = IV;
        // Parameter block: digest length 32, key length 0, fanout 1, depth 1.
        h[0] ^= 0x0101_0020;
        Blake2s { h, t: 0, buf: [0; 64], buflen: 0 }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        // A full buffer is only compressed once *more* input arrives: the
        // final block must be compressed with the last-block flag instead.
        while !data.is_empty() {
            if self.buflen == 64 {
                self.t += 64;
                self.compress(false);
                self.buflen = 0;
            }
            let n = data.len().min(64 - self.buflen);
            self.buf[self.buflen..self.buflen + n].copy_from_slice(&data[..n]);
            self.buflen += n;
            data = &data[n..];
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        self.t += self.buflen as u64;
        self.buf[self.buflen..].fill(0);
        self.compress(true);
        let mut out = [0u8; 32];
        for (i, w) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, last: bool) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(self.buf[4 * i..4 * i + 4].try_into().unwrap());
        }
        let mut v = [0u32; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.t as u32;
        v[13] ^= (self.t >> 32) as u32;
        if last {
            v[14] ^= 0xFFFF_FFFF;
        }

        #[inline(always)]
        fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
            v[d] = (v[d] ^ v[a]).rotate_right(16);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(12);
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
            v[d] = (v[d] ^ v[a]).rotate_right(8);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(7);
        }

        for s in &SIGMA {
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }
        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

/// One-shot BLAKE2s-256 of `data`.
pub fn blake2s(data: &[u8]) -> [u8; 32] {
    let mut h = Blake2s::new();
    h.update(data);
    h.finalize()
}

/// A 256-bit content digest — the key space of the relink cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub [u8; 32]);

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({self})")
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

/// Digest of a module's canonical serialized form. Two modules with equal
/// bytes share all per-module cache entries, whatever their provenance.
pub fn module_hash(m: &Module) -> ContentHash {
    ContentHash(blake2s(&binary::write_module(m)))
}

/// Digest of an archive (its serialized members, in order).
pub fn archive_hash(a: &Archive) -> ContentHash {
    let mut h = Blake2s::new();
    h.update(b"om-archive/v1\0");
    for m in a.members() {
        let bytes = binary::write_module(m);
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(&bytes);
    }
    ContentHash(h.finalize())
}

fn put_str(h: &mut Blake2s, s: &str) {
    h.update(&(s.len() as u64).to_le_bytes());
    h.update(s.as_bytes());
}

/// Canonical fingerprint of `(level, options)`: any knob that changes what
/// the pipeline produces must feed this, or the cache would serve stale
/// results across option changes. [`FaultPlan`] equality deliberately
/// ignores runtime firing state, and so does this fingerprint.
///
/// [`FaultPlan`]: crate::fault::FaultPlan
pub fn options_fingerprint(level: OmLevel, options: &OmOptions) -> ContentHash {
    let mut h = Blake2s::new();
    h.update(b"om-options/v1\0");
    h.update(&[level.index() as u8]);
    h.update(&[
        options.sort_commons as u8,
        options.align_backward_targets as u8,
        options.verify as u8,
    ]);
    h.update(&(options.max_rounds as u64).to_le_bytes());
    h.update(&(options.preemptible.len() as u64).to_le_bytes());
    for name in &options.preemptible {
        put_str(&mut h, name);
    }
    match &options.profile {
        None => h.update(&[0]),
        Some(p) => {
            h.update(&[1]);
            put_str(&mut h, &p.to_json());
        }
    }
    h.update(&options.pgo_hot_min.to_le_bytes());
    match &options.fault {
        None => h.update(&[0]),
        Some(f) => {
            let kind = crate::fault::FaultKind::ALL
                .iter()
                .position(|k| *k == f.kind)
                .expect("FaultKind::ALL is exhaustive") as u8;
            h.update(&[1, kind]);
            h.update(&(f.site as u64).to_le_bytes());
        }
    }
    ContentHash(h.finalize())
}

/// The whole-link cache key: every input module digest (in link order),
/// every library digest, and the option fingerprint.
pub fn link_key(
    module_hashes: &[ContentHash],
    lib_hashes: &[ContentHash],
    level: OmLevel,
    options: &OmOptions,
) -> ContentHash {
    let mut h = Blake2s::new();
    h.update(b"om-link/v1\0");
    h.update(&options_fingerprint(level, options).0);
    h.update(&(module_hashes.len() as u64).to_le_bytes());
    for m in module_hashes {
        h.update(&m.0);
    }
    h.update(&(lib_hashes.len() as u64).to_le_bytes());
    for l in lib_hashes {
        h.update(&l.0);
    }
    ContentHash(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc7693_empty_vector() {
        assert_eq!(
            hex(&blake2s(b"")),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn rfc7693_abc_vector() {
        assert_eq!(
            hex(&blake2s(b"abc")),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let one = blake2s(&data);
        for split in [0, 1, 63, 64, 65, 128, 999, 1000] {
            let mut h = Blake2s::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), one, "split at {split}");
        }
    }

    #[test]
    fn module_hash_tracks_content() {
        let mut a = Module::new("m");
        a.text = vec![0; 8];
        let mut b = a.clone();
        assert_eq!(module_hash(&a), module_hash(&b));
        b.data.push(7);
        assert_ne!(module_hash(&a), module_hash(&b));
        // Same content under a different name is a different module
        // identity: the serialized form includes the name.
        let mut c = a.clone();
        c.name = "n".into();
        assert_ne!(module_hash(&a), module_hash(&c));
        a.text[0] = 1;
        assert_ne!(module_hash(&a), module_hash(&b));
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = OmOptions::default();
        let f0 = options_fingerprint(OmLevel::Full, &base);
        assert_eq!(f0, options_fingerprint(OmLevel::Full, &base.clone()));
        assert_ne!(f0, options_fingerprint(OmLevel::Simple, &base));

        let mut o = base.clone();
        o.verify = true;
        assert_ne!(f0, options_fingerprint(OmLevel::Full, &o));
        let mut o = base.clone();
        o.preemptible.push("malloc".into());
        assert_ne!(f0, options_fingerprint(OmLevel::Full, &o));
        let mut o = base.clone();
        o.fault = Some(crate::fault::FaultPlan::new(crate::fault::FaultKind::CountSkew, 3));
        let ff = options_fingerprint(OmLevel::Full, &o);
        assert_ne!(f0, ff);
        // A fresh plan at the same (kind, site) fingerprints identically:
        // firing state is runtime-only.
        let mut o2 = base.clone();
        o2.fault = Some(crate::fault::FaultPlan::new(crate::fault::FaultKind::CountSkew, 3));
        assert_eq!(ff, options_fingerprint(OmLevel::Full, &o2));
    }

    #[test]
    fn link_key_tracks_inputs_and_order(){
        let a = ContentHash(blake2s(b"a"));
        let b = ContentHash(blake2s(b"b"));
        let o = OmOptions::default();
        let k1 = link_key(&[a, b], &[], OmLevel::Full, &o);
        let k2 = link_key(&[b, a], &[], OmLevel::Full, &o);
        assert_ne!(k1, k2);
        assert_ne!(k1, link_key(&[a, b], &[a], OmLevel::Full, &o));
        assert_eq!(k1, link_key(&[a, b], &[], OmLevel::Full, &o));
    }
}
