//! OM-full: the whole set of address-calculation optimizations, enabled by
//! OM's ability to delete and reorder instructions (§3, §4).
//!
//! Beyond OM-simple:
//!
//! * prologue GPDISP pairs that compile-time scheduling sank into the body
//!   are restored "to their logical place at the beginning of the procedure";
//! * a procedure whose address never escapes and whose every call site is a
//!   same-GAT BSR loses its prologue GP setup entirely, and every call site
//!   loses its PV load;
//! * removed instructions are deleted (the code shrinks), not nullified;
//! * the GAT is reduced to a fixpoint: dropping dead slots pulls small data
//!   closer to GP, which lets more address loads be nullified, which kills
//!   more slots — "perhaps enabling a fresh round of the other improvements".

use crate::analysis::{
    address_taken, call_sites, find_entry_pair, prologue_pair_at_entry, reads_pv_outside,
    use_index, CallKind, Snapshot, UseKind,
};
use crate::fault::{armed, FaultKind, FaultPlan};
use crate::pipeline::CallBook;
use crate::simple::{bsr_reachable, transform_address_loads};
use crate::stats::OmStats;
use crate::sym::{GlobalRef, InstId, OmError, SMark, SymProgram};
use om_alpha::{BrOp, Effects, Inst, Reg};
use std::collections::{HashMap, HashSet};

/// Runs OM-full over the program.
///
/// # Errors
///
/// Propagates snapshot (layout) failures.
pub fn run(
    program: &mut SymProgram,
    stats: &mut OmStats,
    book: &mut CallBook,
) -> Result<(), OmError> {
    run_with(program, stats, book, &crate::pipeline::OmOptions::default())
}

/// [`run`] with explicit ablation options (layout policy, fixpoint budget).
///
/// # Errors
///
/// Propagates snapshot (layout) failures.
pub fn run_with(
    program: &mut SymProgram,
    stats: &mut OmStats,
    book: &mut CallBook,
    options: &crate::pipeline::OmOptions,
) -> Result<(), OmError> {
    program.preserve_gat = false;
    restore_prologues(program);

    // Iterate to the GAT-reduction fixpoint. Each round makes decisions
    // against a fresh layout of the *current* (already shrunk) program;
    // distances only shrink, so earlier decisions stay valid.
    let preempt: HashSet<&str> = options.preemptible.iter().map(String::as_str).collect();
    for _round in 0..options.max_rounds {
        let snap = Snapshot::capture_with(program, options.sort_commons)?;
        let mut changed = false;
        let m = crate::obs::PassMeter::begin("calls", stats);
        changed |= remove_prologues_and_convert_calls(
            program,
            &snap,
            stats,
            book,
            &preempt,
            options.fault.as_ref(),
        );
        m.end(stats);
        let before = (stats.addr_loads_converted, stats.addr_loads_nullified);
        let m = crate::obs::PassMeter::begin("convert", stats);
        transform_address_loads(program, &snap, stats, &preempt, options.fault.as_ref());
        m.end(stats);
        changed |= (stats.addr_loads_converted, stats.addr_loads_nullified) != before;
        // Deletion: in OM-full every nullified instruction is actually
        // removed from the code.
        let m = crate::obs::PassMeter::begin("nullify", stats);
        changed |= delete_nops(program, stats);
        m.end(stats);
        om_obs::count("pipeline.full_rounds", 1);
        if !changed {
            break;
        }
    }
    Ok(())
}

/// Moves each procedure's entry GPDISP pair back to instructions 0 and 1,
/// when it is safe: nothing before the pair may read GP or write PV, and no
/// branch may target the skipped-over region (never the case for a prologue
/// region).
pub fn restore_prologues(program: &mut SymProgram) {
    for m in &mut program.modules {
        for p in &mut m.procs {
            let Some((hi_idx, lo_idx)) = find_entry_pair(p) else { continue };
            if hi_idx == 0 && lo_idx == 1 {
                continue;
            }
            // Safety: instructions currently before the pair must not read
            // GP (they would now see the new value) or write PV/GP, and must
            // not be branch targets or control transfers.
            let limit = hi_idx.max(lo_idx);
            let targeted: HashSet<InstId> = p
                .insts
                .iter()
                .filter_map(|i| match i.mark {
                    SMark::BrLocal { target } => Some(target),
                    _ => None,
                })
                .collect();
            let movable = p.insts[..limit].iter().enumerate().all(|(k, i)| {
                if k == hi_idx || k == lo_idx {
                    return true;
                }
                let e = Effects::of(&i.inst);
                !e.reads_int(Reg::GP)
                    && !e.writes_int(Reg::GP)
                    && !e.writes_int(Reg::PV)
                    && !e.control
                    && !targeted.contains(&i.id)
            });
            if !movable {
                continue;
            }
            let lo = p.insts.remove(lo_idx);
            let hi = p.insts.remove(if hi_idx > lo_idx { hi_idx - 1 } else { hi_idx });
            p.insts.insert(0, hi);
            p.insts.insert(1, lo);
        }
    }
}

/// One round of call-site optimization with whole-program knowledge.
/// Returns true if anything changed.
fn remove_prologues_and_convert_calls(
    program: &mut SymProgram,
    snap: &Snapshot,
    stats: &mut OmStats,
    book: &mut CallBook,
    preempt: &HashSet<&str>,
    fault: Option<&FaultPlan>,
) -> bool {
    let single_group = snap.single_group();
    let taken = address_taken(program);

    // Collect every call site with its caller coordinates and its address
    // under the snapshot (mutations below shift indices, so addresses are
    // frozen now).
    struct Site {
        mi: usize,
        pi: usize,
        addr: u64,
        jsr_id: InstId,
        kind: CallKind,
        gp_reset: Option<(InstId, InstId)>,
    }
    let mut sites: Vec<Site> = Vec::new();
    for (mi, m) in program.modules.iter().enumerate() {
        for (pi, p) in m.procs.iter().enumerate() {
            for s in call_sites(p) {
                sites.push(Site {
                    mi,
                    pi,
                    addr: snap.inst_addr(program, mi, pi, s.at),
                    jsr_id: p.insts[s.at].id,
                    kind: s.kind,
                    gp_reset: s.gp_reset,
                });
            }
        }
    }

    // Group call sites per target procedure.
    let mut callers: HashMap<GlobalRef, Vec<usize>> = HashMap::new();
    for (si, s) in sites.iter().enumerate() {
        if let CallKind::DirectJsr { target, .. } | CallKind::Bsr { target, .. } = &s.kind {
            callers.entry(target.clone()).or_default().push(si);
        }
    }

    // Which procedures can lose their prologue GP setup entirely?
    let mut drop_prologue: HashSet<GlobalRef> = HashSet::new();
    for (mi, m) in program.modules.iter().enumerate() {
        for p in &m.procs {
            let r = GlobalRef::Def { module: mi, sym: p.sym };
            let Some((hi, lo)) = prologue_pair_at_entry(p) else { continue };
            // A preemptible procedure may be entered by callers OM cannot
            // see (or replace a definition elsewhere): keep its prologue.
            if preempt.contains(p.name.as_str())
                || taken.contains(&r)
                || reads_pv_outside(p, &[hi, lo])
            {
                continue;
            }
            let entry_addr = snap.addr(&r);
            let all_ok = callers.get(&r).map(|list| {
                list.iter().all(|&si| {
                    let s = &sites[si];
                    // An existing prologue-skipping BSR pins the prologue in
                    // place (it enters at entry+8).
                    let skips = matches!(s.kind, CallKind::Bsr { addend, .. } if addend != 0);
                    snap.group(s.mi) == snap.group(mi)
                        && !skips
                        && bsr_reachable(s.addr, entry_addr)
                })
            });
            // A procedure with no callers at all (dead) also qualifies.
            if all_ok.unwrap_or(true) {
                drop_prologue.insert(r);
            }
        }
    }

    let mut changed = false;

    // Delete the prologues of the chosen procedures.
    for r in &drop_prologue {
        let GlobalRef::Def { module, .. } = r else { unreachable!() };
        let Some((_, pi)) = program.proc_of(r) else { continue };
        let p = &mut program.modules[*module].procs[pi];
        let (hi, lo) = prologue_pair_at_entry(p).expect("checked above");
        let doomed: HashSet<InstId> = [hi, lo].into_iter().collect();
        p.delete(&doomed);
        stats.insts_deleted += 2;
        changed = true;
    }

    // Rewrite call sites.
    for s in &sites {
        let key = (s.mi, s.pi, s.jsr_id);

        // GP-reset deletion.
        let same_gp_target = match &s.kind {
            CallKind::DirectJsr { target, .. } | CallKind::Bsr { target, .. } => {
                if preempt.contains(crate::analysis::ref_name(program, target)) {
                    false
                } else {
                    match target {
                        GlobalRef::Def { module, .. } => snap.group(s.mi) == snap.group(*module),
                        GlobalRef::Common { .. } => single_group,
                    }
                }
            }
            CallKind::Indirect => single_group,
        };
        if let Some((hi, lo)) = s.gp_reset {
            if same_gp_target {
                let p = &mut program.modules[s.mi].procs[s.pi];
                let doomed: HashSet<InstId> = [hi, lo].into_iter().collect();
                p.delete(&doomed);
                stats.insts_deleted += 2;
                book.entry(key).or_insert((false, true)).1 = false;
                changed = true;
            }
        }

        // JSR → BSR with PV-load removal (never for preemptible targets).
        let CallKind::DirectJsr { load, target } = &s.kind else { continue };
        if preempt.contains(crate::analysis::ref_name(program, target))
            || program.proc_of(target).is_none()
        {
            continue;
        }
        let target_addr = snap.addr(target);
        if !bsr_reachable(s.addr, target_addr) {
            continue;
        }
        let same_gp = same_gp_target;

        let uses = use_index(&program.modules[s.mi].procs[s.pi]);
        let sole_use = uses
            .get(load)
            .map(|u| u.len() == 1 && u[0].1 == UseKind::Jsr)
            .unwrap_or(false);

        // Decide the entry point and whether PV dies.
        let (mut addend, kill_load) = if drop_prologue.contains(target) {
            (0, sole_use)
        } else if same_gp {
            let (tm, tp) = program.proc_of(target).expect("checked");
            let tproc = &program.modules[tm].procs[tp];
            match prologue_pair_at_entry(tproc) {
                Some((hi, lo)) if sole_use && !reads_pv_outside(tproc, &[hi, lo]) => (8, true),
                _ => (0, false),
            }
        } else {
            // Different GP group: the callee still derives its GP from PV,
            // so the PV load must stay; BSR is still profitable.
            (0, false)
        };

        // Fault point: a `BSR target+8` against a callee whose entry holds
        // real code (no GPDISP pair left to skip) silently drops two
        // instructions from the callee's execution.
        if addend == 0 {
            let entry_is_real_code = program
                .proc_of(target)
                .map(|(tm, tp)| prologue_pair_at_entry(&program.modules[tm].procs[tp]).is_none())
                .unwrap_or(false);
            if entry_is_real_code && armed(fault, FaultKind::BsrSkew) {
                addend = 8;
            }
        }
        // Fault point: the PV load dies below, but the branch forgets the
        // +8 prologue skip that compensates — the callee rebuilds GP from a
        // stale PV.
        if addend == 8 && kill_load && armed(fault, FaultKind::PvLoadDrop) {
            addend = 0;
        }

        let p = &mut program.modules[s.mi].procs[s.pi];
        let at = p.index_of(s.jsr_id);
        p.insts[at].inst = Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 0 };
        p.insts[at].mark = SMark::BrSym { target: target.clone(), addend };
        stats.calls_jsr_to_bsr += 1;
        changed = true;
        if kill_load {
            let doomed: HashSet<InstId> = [*load].into_iter().collect();
            p.delete(&doomed);
            stats.insts_deleted += 1;
            stats.addr_loads_nullified += 1;
            book.entry(key).or_insert((true, false)).0 = false;
        }
    }

    changed
}

/// Deletes all no-op instructions (OM-full turns transform residue into
/// actual code shrinkage). Returns true if anything was deleted.
///
/// Only no-ops that are not branch targets are deleted directly; targeted
/// ones are retargeted by [`crate::sym::SymProc::delete`] automatically.
fn delete_nops(program: &mut SymProgram, stats: &mut OmStats) -> bool {
    let mut any = false;
    for m in &mut program.modules {
        for p in &mut m.procs {
            let doomed: HashSet<InstId> = p
                .insts
                .iter()
                .enumerate()
                .filter(|&(k, i)| {
                    // Never delete a trailing instruction (branch retarget
                    // needs a survivor after it); procedures end in RET/HALT
                    // anyway.
                    i.inst.is_nop() && matches!(i.mark, SMark::None) && k + 1 < p.insts.len()
                })
                .map(|(_, i)| i.id)
                .collect();
            if doomed.is_empty() {
                continue;
            }
            // Note: transform passes count each nullification once; nops
            // deleted here were already counted as `insts_nullified` by the
            // shared transform body. Reclassify them as deletions.
            stats.insts_nullified = stats.insts_nullified.saturating_sub(doomed.len());
            stats.insts_deleted += doomed.len();
            p.delete(&doomed);
            any = true;
        }
    }
    any
}
