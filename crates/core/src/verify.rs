//! Whole-program verification of OM's output.
//!
//! OM rewrites, deletes, and reorders instructions after the compiler is
//! done, so a single wrong displacement silently corrupts a binary. This
//! module proves structural invariants on both the symbolic program (after
//! transformation, before emission) and the final linked [`Image`] (after
//! relocation): every branch lands on an instruction boundary inside
//! `.text`, every `Literal` reloc names a live GAT slot within 16-bit GP
//! reach and the patched displacement agrees, GPDISP pairs decode to a
//! matching LDAH/LDA register pair whose halves sum to `GP - anchor`,
//! LITUSE hints point at real uses of the loaded register, segments do not
//! overlap, and the transformation statistics balance (kept + deleted ==
//! original + inserted).
//!
//! Run it with `om --verify`, [`OmOptions::verify`], or directly via
//! [`verify_sym`] / [`verify_stats`] / [`verify_linked`].
//!
//! [`OmOptions::verify`]: crate::pipeline::OmOptions

use crate::stats::OmStats;
use crate::sym::{SAnchor, SMark, SymProgram};
use om_alpha::{decode, Effects, Inst, MemOp, Reg};
use om_linker::{sym_addr, Image, ProgramLayout, SymbolTable};
use om_objfile::{Module, RelocKind, SecId, DATA_BASE};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Outcome of a verification pass: how many individual invariants were
/// checked and which ones failed.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Individual invariant checks performed.
    pub checks: usize,
    /// Human-readable description of every violated invariant.
    pub violations: Vec<String>,
}

impl VerifyReport {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(msg());
        }
    }

    fn fail(&mut self, msg: String) {
        self.checks += 1;
        self.violations.push(msg);
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} checks, {} violations", self.checks, self.violations.len())?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Checks the symbolic program's internal consistency after transformation:
/// no dangling instruction ids, LITUSE links pointing at surviving `Literal`
/// loads, GPDISP halves paired with each other, and marks agreeing with the
/// instructions they annotate.
pub fn verify_sym(program: &SymProgram) -> VerifyReport {
    let mut r = VerifyReport::default();
    for m in &program.modules {
        for p in &m.procs {
            let loc = |what: String| format!("{}/{}: {what}", m.source.name, p.name);
            let ids: HashMap<u32, usize> =
                p.insts.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
            r.check(ids.len() == p.insts.len(), || loc("duplicate instruction ids".into()));
            r.check(
                p.insts.last().is_some_and(|i| i.inst.is_control()),
                || loc("procedure does not end in a control instruction".into()),
            );
            for s in &p.insts {
                let at = |what: &str| loc(format!("inst {}: {what}", s.id));
                match &s.mark {
                    SMark::None => {}
                    SMark::Literal { .. } => r.check(
                        matches!(s.inst, Inst::Mem { op: MemOp::Ldq, rb: Reg::GP, .. }),
                        || at("Literal mark on a non-`ldq rx, d(gp)` instruction"),
                    ),
                    SMark::LituseBase { load } => {
                        r.check(matches!(s.inst, Inst::Mem { .. }), || {
                            at("LituseBase on a non-memory instruction")
                        });
                        check_lituse_load(&mut r, p, &ids, *load, &at);
                    }
                    SMark::LituseJsr { load } => {
                        r.check(matches!(s.inst, Inst::Jmp { .. }), || {
                            at("LituseJsr on a non-jump instruction")
                        });
                        check_lituse_load(&mut r, p, &ids, *load, &at);
                    }
                    SMark::LituseAddr { load } => check_lituse_load(&mut r, p, &ids, *load, &at),
                    SMark::GpdispHi { lo, anchor } => {
                        r.check(
                            matches!(s.inst, Inst::Mem { op: MemOp::Ldah, .. }),
                            || at("GpdispHi on a non-LDAH instruction"),
                        );
                        match ids.get(lo) {
                            Some(&li) => r.check(
                                matches!(p.insts[li].mark, SMark::GpdispLo { hi } if hi == s.id),
                                || at("GPDISP low half does not point back at this high half"),
                            ),
                            None => r.fail(at("dangling GPDISP low-half id")),
                        }
                        if let SAnchor::AfterCall(c) = anchor {
                            r.check(ids.contains_key(c), || {
                                at("GPDISP anchored after a deleted call")
                            });
                        }
                    }
                    SMark::GpdispLo { hi } => {
                        r.check(
                            matches!(s.inst, Inst::Mem { op: MemOp::Lda, .. }),
                            || at("GpdispLo on a non-LDA instruction"),
                        );
                        match ids.get(hi) {
                            Some(&hi_i) => r.check(
                                matches!(p.insts[hi_i].mark, SMark::GpdispHi { lo, .. } if lo == s.id),
                                || at("GPDISP high half does not point back at this low half"),
                            ),
                            None => r.fail(at("dangling GPDISP high-half id")),
                        }
                    }
                    SMark::BrSym { .. } => r.check(matches!(s.inst, Inst::Br { .. }), || {
                        at("BrSym mark on a non-branch instruction")
                    }),
                    SMark::BrLocal { target } => {
                        r.check(matches!(s.inst, Inst::Br { .. }), || {
                            at("BrLocal mark on a non-branch instruction")
                        });
                        r.check(ids.contains_key(target), || at("dangling local branch target"));
                    }
                    SMark::Gprel { .. } => r.check(
                        matches!(s.inst, Inst::Mem { rb: Reg::GP, .. }),
                        || at("Gprel mark on an instruction not based on GP"),
                    ),
                    SMark::GprelHi { .. } => r.check(
                        matches!(s.inst, Inst::Mem { op: MemOp::Ldah, rb: Reg::GP, .. }),
                        || at("GprelHi mark on a non-`ldah rx, d(gp)` instruction"),
                    ),
                    SMark::GprelLo { .. } => r.check(matches!(s.inst, Inst::Mem { .. }), || {
                        at("GprelLo mark on a non-memory instruction")
                    }),
                }
            }
        }
    }
    r
}

fn check_lituse_load(
    r: &mut VerifyReport,
    p: &crate::sym::SymProc,
    ids: &HashMap<u32, usize>,
    load: u32,
    at: &dyn Fn(&str) -> String,
) {
    match ids.get(&load) {
        Some(&li) => r.check(
            matches!(p.insts[li].mark, SMark::Literal { .. }),
            || at("LITUSE link points at an instruction that is not an address load"),
        ),
        None => r.fail(at("LITUSE link points at a deleted instruction")),
    }
}

/// Checks that the transformation statistics balance against the surviving
/// program: `kept == original + inserted - deleted`, and every instruction
/// counted as nullified (plus every inserted UNOP) is actually present as a
/// no-op.
pub fn verify_stats(program: &SymProgram, stats: &OmStats) -> VerifyReport {
    let mut r = VerifyReport::default();
    let kept = program.inst_count() as i64;
    let expected =
        stats.insts_before as i64 + stats.unops_inserted as i64 - stats.insts_deleted as i64;
    r.check(kept == expected, || {
        format!(
            "instruction accounting does not balance: {} kept != {} before + {} inserted - {} deleted",
            kept, stats.insts_before, stats.unops_inserted, stats.insts_deleted
        )
    });
    let nops = program
        .modules
        .iter()
        .flat_map(|m| m.procs.iter())
        .flat_map(|p| p.insts.iter())
        .filter(|s| s.inst.is_nop())
        .count();
    r.check(nops >= stats.insts_nullified + stats.unops_inserted, || {
        format!(
            "{} no-ops in the program cannot cover {} nullified + {} inserted",
            nops, stats.insts_nullified, stats.unops_inserted
        )
    });
    r
}

/// Checks the final linked image against the modules and layout that
/// produced it: segment geometry, instruction decodability, branch targets,
/// and — for every relocation — that the patched bits in the image agree
/// with an independent recomputation from the layout.
pub fn verify_linked(
    modules: &[Module],
    symtab: &SymbolTable,
    layout: &ProgramLayout,
    image: &Image,
) -> VerifyReport {
    let mut r = VerifyReport::default();

    // Segment geometry: ascending, non-overlapping.
    for w in image.segments.windows(2) {
        r.check(w[0].end() <= w[1].base, || {
            format!(
                "segments overlap: [{:#x}, {:#x}) and [{:#x}, {:#x})",
                w[0].base,
                w[0].end(),
                w[1].base,
                w[1].end()
            )
        });
    }

    let t = layout.info.text;
    r.check(t.size % 4 == 0, || format!("text size {:#x} not a multiple of 4", t.size));
    r.check(
        image.entry >= t.base && image.entry < t.base + t.size && image.entry % 4 == 0,
        || format!("entry {:#x} outside .text or misaligned", image.entry),
    );

    // Decode the entire text segment once.
    let Some(text_seg) = image.segments.iter().find(|s| s.contains(t.base)) else {
        r.fail("no segment maps the text base".into());
        return r;
    };
    // Words between module texts are alignment padding and must be zero;
    // every covered word must decode.
    let mut covered = vec![false; (t.size / 4) as usize];
    for (mi, m) in modules.iter().enumerate() {
        let start = (layout.bases[mi].text - t.base) / 4;
        for w in start..start + (m.text.len() as u64 / 4) {
            if let Some(c) = covered.get_mut(w as usize) {
                *c = true;
            }
        }
    }
    let mut insts: Vec<Option<Inst>> = Vec::with_capacity((t.size / 4) as usize);
    for off in (0..t.size as usize).step_by(4) {
        let word = u32::from_le_bytes(text_seg.bytes[off..off + 4].try_into().unwrap());
        if !covered[off / 4] {
            r.check(word == 0, || {
                format!("nonzero padding word {word:#010x} at {:#x}", t.base + off as u64)
            });
            insts.push(None);
            continue;
        }
        match decode(word) {
            Ok(i) => insts.push(Some(i)),
            Err(e) => {
                insts.push(None);
                r.fail(format!("undecodable word {word:#010x} at {:#x}: {e}", t.base + off as u64));
            }
        }
    }
    r.checks += insts.len();

    // Every branch in the image lands on an instruction boundary in .text.
    for (idx, inst) in insts.iter().enumerate() {
        if let Some(Inst::Br { disp, .. }) = inst {
            let target = t.base as i64 + idx as i64 * 4 + 4 + *disp as i64 * 4;
            r.check(
                target >= t.base as i64 && target < (t.base + t.size) as i64,
                || {
                    format!(
                        "branch at {:#x} targets {target:#x}, outside .text",
                        t.base + idx as u64 * 4
                    )
                },
            );
        }
    }

    let data_seg = image.segments.iter().find(|s| s.contains(DATA_BASE));
    let read_u64 = |addr: u64| -> Option<u64> {
        let s = data_seg?;
        if !s.contains(addr) || !s.contains(addr + 7) {
            return None;
        }
        let off = (addr - s.base) as usize;
        Some(u64::from_le_bytes(s.bytes[off..off + 8].try_into().unwrap()))
    };
    let inst_at = |text_off: u64| -> Option<&Inst> {
        insts.get((text_off / 4) as usize).and_then(|i| i.as_ref())
    };

    for (mi, m) in modules.iter().enumerate() {
        let b = &layout.bases[mi];
        let gp = layout.gp_values[layout.group_of_module[mi] as usize] as i64;
        let m0 = b.text - t.base; // module text offset within the segment
        r.check(b.text >= t.base && b.text + m.text.len() as u64 <= t.base + t.size, || {
            format!("module `{}` text outside the .text extent", m.name)
        });
        let lit_offsets: HashSet<u64> = m
            .relocs
            .iter()
            .filter(|r| r.sec == SecId::Text && matches!(r.kind, RelocKind::Literal { .. }))
            .map(|r| r.offset)
            .collect();

        for rel in &m.relocs {
            let at = |what: String| format!("{}+{:#x}: {what}", m.name, rel.offset);
            if rel.sec == SecId::Text {
                r.check(rel.offset + 4 <= m.text.len() as u64, || {
                    at("relocation outside module text".into())
                });
                if rel.offset + 4 > m.text.len() as u64 {
                    continue;
                }
            }
            match (rel.sec, &rel.kind) {
                (SecId::Text, RelocKind::Literal { lita }) => {
                    let li = *lita as usize;
                    if li >= m.lita.len() {
                        r.fail(at(format!("Literal reloc names dead GAT slot {li}")));
                        continue;
                    }
                    let slot = layout.lita_addr[mi][li];
                    let lx = layout.info.lita;
                    r.check(slot >= lx.base && slot + 8 <= lx.base + lx.size, || {
                        at(format!("GAT slot address {slot:#x} outside .lita"))
                    });
                    r.check((slot.wrapping_sub(lx.base)) % 8 == 0, || {
                        at(format!("GAT slot address {slot:#x} not 8-aligned"))
                    });
                    let disp = slot as i64 - gp;
                    r.check(i16::try_from(disp).is_ok(), || {
                        at(format!("GAT slot {disp} bytes from GP, outside 16-bit reach"))
                    });
                    match inst_at(m0 + rel.offset) {
                        Some(&Inst::Mem { op: MemOp::Ldq, rb, disp: d, .. }) => {
                            r.check(rb == Reg::GP, || at("address load not based on GP".into()));
                            r.check(d as i64 == disp, || {
                                at(format!("address load patched to {d}, expected {disp}"))
                            });
                        }
                        other => r.fail(at(format!("Literal reloc on {other:?}, expected ldq"))),
                    }
                    let e = &m.lita[li];
                    match sym_addr(modules, symtab, layout, mi, e.sym) {
                        Ok(a) => {
                            let want = (a as i64 + e.addend) as u64;
                            r.check(read_u64(slot) == Some(want), || {
                                at(format!("GAT slot {slot:#x} does not hold {want:#x}"))
                            });
                        }
                        Err(e) => r.fail(at(format!("GAT slot symbol unresolvable: {e}"))),
                    }
                }
                (
                    SecId::Text,
                    RelocKind::LituseBase { load_offset }
                    | RelocKind::LituseJsr { load_offset }
                    | RelocKind::LituseAddr { load_offset },
                ) => {
                    r.check(lit_offsets.contains(load_offset), || {
                        at(format!("LITUSE names {load_offset:#x}, not an address load"))
                    });
                    if rel.offset == *load_offset {
                        // A self-referential LITUSE_ADDR marks an escaping
                        // address load (the value leaks into unrewritable
                        // dataflow); there is no separate use to check.
                        continue;
                    }
                    let load_ra = match inst_at(m0 + load_offset) {
                        Some(&Inst::Mem { op: MemOp::Ldq, ra, .. }) => ra,
                        _ => continue, // already reported by the check above
                    };
                    let Some(use_inst) = inst_at(m0 + rel.offset) else {
                        continue; // undecodable word already reported
                    };
                    let ok = match rel.kind {
                        RelocKind::LituseBase { .. } => {
                            matches!(use_inst, Inst::Mem { rb, .. } if *rb == load_ra)
                        }
                        RelocKind::LituseJsr { .. } => {
                            matches!(use_inst, Inst::Jmp { rb, .. } if *rb == load_ra)
                        }
                        _ => Effects::of(use_inst).reads_int(load_ra),
                    };
                    r.check(ok, || {
                        at(format!("LITUSE hint does not use the loaded register {load_ra:?}"))
                    });
                }
                (SecId::Text, RelocKind::Gpdisp { pair_offset, anchor, .. }) => {
                    let lo_off = rel.offset as i64 + pair_offset;
                    if lo_off < 0 || lo_off as u64 + 4 > m.text.len() as u64 {
                        r.fail(at(format!("GPDISP low half at {lo_off:#x} outside module text")));
                        continue;
                    }
                    let hi = inst_at(m0 + rel.offset);
                    let lo = inst_at(m0 + lo_off as u64);
                    match (hi, lo) {
                        (
                            Some(&Inst::Mem { op: MemOp::Ldah, ra: hra, disp: hd, .. }),
                            Some(&Inst::Mem { op: MemOp::Lda, ra: lra, rb: lrb, disp: ld }),
                        ) => {
                            r.check(hra == lra && lrb == hra, || {
                                at(format!(
                                    "GPDISP pair registers disagree: ldah {hra:?} / lda {lra:?}({lrb:?})"
                                ))
                            });
                            r.check(*anchor < m.text.len() as u64 && anchor % 4 == 0, || {
                                at(format!("GPDISP anchor {anchor:#x} outside module text"))
                            });
                            let got = ((hd as i64) << 16) + ld as i64;
                            let want = gp - (b.text + anchor) as i64;
                            r.check(got == want, || {
                                at(format!("GPDISP pair sums to {got}, expected {want}"))
                            });
                        }
                        other => r.fail(at(format!(
                            "GPDISP pair is {other:?}, expected ldah/lda"
                        ))),
                    }
                }
                (SecId::Text, RelocKind::BrAddr { sym, addend }) => {
                    let a = match sym_addr(modules, symtab, layout, mi, *sym) {
                        Ok(a) => a,
                        Err(e) => {
                            r.fail(at(format!("branch target unresolvable: {e}")));
                            continue;
                        }
                    };
                    let target = a as i64 + addend;
                    let pc = (b.text + rel.offset) as i64;
                    let delta = target - (pc + 4);
                    r.check(delta % 4 == 0, || {
                        at(format!("branch target {target:#x} not instruction-aligned"))
                    });
                    r.check((-(1 << 20)..(1 << 20)).contains(&(delta / 4)), || {
                        at(format!("branch displacement {} words out of range", delta / 4))
                    });
                    r.check(
                        target >= t.base as i64 && target < (t.base + t.size) as i64,
                        || at(format!("branch target {target:#x} outside .text")),
                    );
                    match inst_at(m0 + rel.offset) {
                        Some(&Inst::Br { disp, .. }) => r.check(
                            delta % 4 == 0 && disp as i64 == delta / 4,
                            || at(format!("branch patched to {disp}, expected {}", delta / 4)),
                        ),
                        other => r.fail(at(format!("BrAddr reloc on {other:?}, expected branch"))),
                    }
                }
                (SecId::Text, RelocKind::Gprel16 { sym, addend, .. }) => {
                    match sym_addr(modules, symtab, layout, mi, *sym) {
                        Ok(a) => {
                            let disp = a as i64 + addend - gp;
                            r.check(i16::try_from(disp).is_ok(), || {
                                at(format!("gprel16 target {disp} bytes from GP"))
                            });
                            match inst_at(m0 + rel.offset) {
                                Some(&Inst::Mem { rb, disp: d, .. }) => {
                                    r.check(rb == Reg::GP, || {
                                        at("gprel16 use not based on GP".into())
                                    });
                                    r.check(d as i64 == disp, || {
                                        at(format!("gprel16 patched to {d}, expected {disp}"))
                                    });
                                }
                                other => {
                                    r.fail(at(format!("Gprel16 reloc on {other:?}, expected memory op")))
                                }
                            }
                        }
                        Err(e) => r.fail(at(format!("gprel16 target unresolvable: {e}"))),
                    }
                }
                (SecId::Text, RelocKind::GprelHigh { sym, addend, .. }) => {
                    match sym_addr(modules, symtab, layout, mi, *sym) {
                        Ok(a) => {
                            let x = a as i64 + addend - gp;
                            let hi = (x - (x as i16) as i64) >> 16;
                            r.check(i16::try_from(hi).is_ok(), || {
                                at(format!("gprelhigh target {x} bytes from GP, outside ±2GB"))
                            });
                            match inst_at(m0 + rel.offset) {
                                Some(&Inst::Mem { op: MemOp::Ldah, rb, disp: d, .. }) => {
                                    r.check(rb == Reg::GP, || {
                                        at("gprelhigh not based on GP".into())
                                    });
                                    r.check(d as i64 == hi, || {
                                        at(format!("gprelhigh patched to {d}, expected {hi}"))
                                    });
                                }
                                other => {
                                    r.fail(at(format!("GprelHigh reloc on {other:?}, expected ldah")))
                                }
                            }
                        }
                        Err(e) => r.fail(at(format!("gprelhigh target unresolvable: {e}"))),
                    }
                }
                (SecId::Text, RelocKind::GprelLow { sym, addend, hi_addend, .. }) => {
                    match sym_addr(modules, symtab, layout, mi, *sym) {
                        Ok(a) => {
                            let xh = a as i64 + hi_addend - gp;
                            let hi = (xh - (xh as i16) as i64) >> 16;
                            let disp = a as i64 + addend - gp - (hi << 16);
                            r.check(i16::try_from(disp).is_ok(), || {
                                at(format!("gprellow residual {disp} does not fit 16 bits"))
                            });
                            match inst_at(m0 + rel.offset) {
                                Some(&Inst::Mem { disp: d, .. }) => r.check(d as i64 == disp, || {
                                    at(format!("gprellow patched to {d}, expected {disp}"))
                                }),
                                other => {
                                    r.fail(at(format!("GprelLow reloc on {other:?}, expected memory op")))
                                }
                            }
                        }
                        Err(e) => r.fail(at(format!("gprellow target unresolvable: {e}"))),
                    }
                }
                (sec @ (SecId::Data | SecId::Sdata), RelocKind::RefQuad { sym, addend }) => {
                    let base = if sec == SecId::Data { b.data } else { b.sdata };
                    match sym_addr(modules, symtab, layout, mi, *sym) {
                        Ok(a) => {
                            let want = (a as i64 + addend) as u64;
                            r.check(read_u64(base + rel.offset) == Some(want), || {
                                at(format!(
                                    "{sec} quad at {:#x} does not hold {want:#x}",
                                    base + rel.offset
                                ))
                            });
                        }
                        Err(e) => r.fail(at(format!("refquad target unresolvable: {e}"))),
                    }
                }
                (sec, kind) => r.fail(at(format!("unexpected relocation {kind:?} in {sec}"))),
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{optimize_and_link_with, OmLevel, OmOptions};
    use om_workloads::{build::build, spec};

    fn verified_options() -> OmOptions {
        OmOptions { verify: true, ..OmOptions::default() }
    }

    #[test]
    fn clean_pipeline_passes_and_reports_checks() {
        let spec = spec::quick(&spec::by_name("espresso").unwrap());
        let b = build(&spec, om_workloads::CompileMode::Each).unwrap();
        for level in OmLevel::ALL {
            let out =
                optimize_and_link_with(&b.objects, &b.libs, level, &verified_options()).unwrap();
            let report = out.verify.expect("verify requested");
            assert!(report.is_ok(), "{level:?}: {report}");
            assert!(report.checks > 100, "{level:?}: only {} checks ran", report.checks);
        }
    }

    #[test]
    fn corrupted_branch_is_caught() {
        // Drive the link manually so the final modules and layout are in
        // hand, then corrupt one branch in the image: the verifier must
        // notice the disagreement.
        let spec = spec::quick(&spec::by_name("compress").unwrap());
        let b = build(&spec, om_workloads::CompileMode::Each).unwrap();
        let modules = om_linker::select_modules(&b.objects, &b.libs).unwrap();
        let symtab = om_linker::build_symbol_table(&modules).unwrap();
        let program = crate::sym::translate(&modules, &symtab).unwrap();
        let final_modules = crate::sym::emit_all(&program).unwrap();
        let symtab = om_linker::build_symbol_table(&final_modules).unwrap();
        let layout = om_linker::layout(
            &final_modules,
            &symtab,
            &om_linker::LayoutOpts::default(),
        )
        .unwrap();
        let mut image =
            om_linker::build_image(&final_modules, &symtab, &layout).unwrap();
        assert!(verify_linked(&final_modules, &symtab, &layout, &image).is_ok());

        // Point some branch 4MB backwards, far outside .text.
        let t = layout.info.text;
        let seg = image.segments.iter_mut().find(|s| s.base == t.base).unwrap();
        let mut patched = false;
        for off in (0..seg.bytes.len()).step_by(4) {
            let word = u32::from_le_bytes(seg.bytes[off..off + 4].try_into().unwrap());
            if let Ok(Inst::Br { .. }) = decode(word) {
                let bad = (word & 0xFFE0_0000) | 0x0010_0000; // disp = -2^20 words
                seg.bytes[off..off + 4].copy_from_slice(&bad.to_le_bytes());
                patched = true;
                break;
            }
        }
        assert!(patched, "no branch found to corrupt");
        let report = verify_linked(&final_modules, &symtab, &layout, &image);
        assert!(!report.is_ok(), "corruption went unnoticed");
        assert!(
            report.violations.iter().any(|v| v.contains("outside .text")
                || v.contains("expected")),
            "unexpected violations: {report}"
        );
    }

    #[test]
    fn stats_imbalance_is_caught() {
        let spec = spec::quick(&spec::by_name("compress").unwrap());
        let b = build(&spec, om_workloads::CompileMode::Each).unwrap();
        let modules = om_linker::select_modules(&b.objects, &b.libs).unwrap();
        let symtab = om_linker::build_symbol_table(&modules).unwrap();
        let program = crate::sym::translate(&modules, &symtab).unwrap();
        let mut stats = OmStats { insts_before: program.inst_count(), ..OmStats::default() };
        assert!(verify_stats(&program, &stats).is_ok());
        stats.insts_deleted = 1; // claim a deletion that never happened
        assert!(!verify_stats(&program, &stats).is_ok());
    }
}
