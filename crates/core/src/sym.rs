//! OM's symbolic program form.
//!
//! "The key idea behind OM is the translation into symbolic form and back"
//! (§4). [`translate`] lifts every module of the program into [`SymProgram`]:
//! procedures become instruction lists whose positional information —
//! branch displacements, GAT slot indices, GPDISP pair offsets, LITUSE
//! links — is replaced by symbolic references that survive deletion and
//! reordering. [`emit_module`] lowers a transformed module back to ordinary
//! object code, recomputing every offset. This is what makes OM-full's code
//! motion safe by construction.

use om_alpha::{decode, Inst};
use om_linker::SymbolTable;
use om_objfile::{
    LitaEntry, Module, Reloc, RelocKind, SecId, SymId, Symbol, SymbolDef, Visibility,
};
use std::collections::HashMap;
use std::fmt;

/// Errors while translating object code to symbolic form.
#[derive(Debug, Clone, PartialEq)]
pub enum OmError {
    /// A text word outside any procedure or undecodable.
    BadText { module: String, offset: u64, what: String },
    /// A relocation that contradicts the code it annotates.
    BadReloc { module: String, what: String },
    Link(om_linker::LinkError),
    /// Post-link verification found invariant violations (see
    /// [`crate::verify`]).
    Verify { checks: usize, violations: Vec<String> },
    /// An internal pipeline invariant was violated (a dangling symbolic
    /// reference at emit time, or a panic caught at a link-server request
    /// boundary). Surfaced as an error so one bad module or transformation
    /// bug fails its request instead of aborting the process.
    Internal { context: String, what: String },
}

impl fmt::Display for OmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmError::BadText { module, offset, what } => {
                write!(f, "bad text in `{module}` at +{offset:#x}: {what}")
            }
            OmError::BadReloc { module, what } => write!(f, "bad relocation in `{module}`: {what}"),
            OmError::Link(e) => write!(f, "{e}"),
            OmError::Internal { context, what } => {
                write!(f, "internal invariant violated in `{context}`: {what}")
            }
            OmError::Verify { checks, violations } => {
                write!(f, "verification failed: {} of {checks} checks", violations.len())?;
                for v in violations.iter().take(8) {
                    write!(f, "\n  {v}")?;
                }
                if violations.len() > 8 {
                    write!(f, "\n  … and {} more", violations.len() - 8)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for OmError {}

impl From<om_linker::LinkError> for OmError {
    fn from(e: om_linker::LinkError) -> Self {
        OmError::Link(e)
    }
}

/// Identifier of an instruction within its procedure; stable across
/// transformation.
pub type InstId = u32;

/// A resolved reference to a program object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GlobalRef {
    /// Defined symbol: `(module index, symbol id)`.
    Def { module: usize, sym: SymId },
    /// A merged common symbol.
    Common { name: String },
}

/// What code address a GPDISP pair's base register holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SAnchor {
    /// PV = this procedure's entry.
    Entry,
    /// RA = the return point of the call instruction with this id.
    AfterCall(InstId),
}

/// Symbolic annotation of one instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum SMark {
    None,
    /// GAT address load of `target + addend`; `escaping` if its value leaks
    /// into unrewritable dataflow.
    Literal { target: GlobalRef, addend: i64, escaping: bool },
    LituseBase { load: InstId },
    LituseJsr { load: InstId },
    LituseAddr { load: InstId },
    GpdispHi { lo: InstId, anchor: SAnchor },
    GpdispLo { hi: InstId },
    /// Branch to another procedure (`addend` lets OM-full skip prologues).
    BrSym { target: GlobalRef, addend: i64 },
    /// Intra-procedure branch to the instruction with this id.
    BrLocal { target: InstId },
    /// 16-bit GP-relative reference (an OM conversion product).
    Gprel { target: GlobalRef, addend: i64 },
    /// High half of a 32-bit GP-relative reference.
    GprelHi { target: GlobalRef, addend: i64 },
    /// Low half, paired with a `GprelHi` computed with `hi_addend`.
    GprelLo { target: GlobalRef, addend: i64, hi_addend: i64 },
}

/// One symbolic instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct SInst {
    pub id: InstId,
    pub inst: Inst,
    pub mark: SMark,
}

/// A procedure in symbolic form.
#[derive(Debug, Clone, PartialEq)]
pub struct SymProc {
    /// Symbol-table id of the procedure in its module.
    pub sym: SymId,
    pub name: String,
    pub vis: Visibility,
    pub insts: Vec<SInst>,
    next_id: InstId,
}

impl SymProc {
    /// Allocates a fresh instruction id (for insertions).
    pub fn fresh_id(&mut self) -> InstId {
        self.next_id += 1;
        self.next_id - 1
    }

    /// Index of the instruction with `id`, if it exists.
    pub fn try_index_of(&self, id: InstId) -> Option<usize> {
        self.insts.iter().position(|i| i.id == id)
    }

    /// Index of the instruction with `id`.
    ///
    /// # Panics
    ///
    /// Panics if no instruction has that id (a dangling symbolic reference).
    /// This is only reachable from optimizer-internal bugs, never from
    /// malformed input: every id that [`translate_module`] derives from
    /// relocations is bounds-checked into a typed [`OmError`], and the emit
    /// path reports dangling ids as [`OmError::Internal`] instead of
    /// panicking. Passes that call this mid-transform own the ids they pass.
    pub fn index_of(&self, id: InstId) -> usize {
        self.try_index_of(id)
            .unwrap_or_else(|| panic!("dangling instruction id {id} in {}", self.name))
    }

    /// Deletes the instructions whose ids are in `doomed`, retargeting any
    /// local branch that pointed at a deleted instruction to the next
    /// surviving one.
    ///
    /// # Panics
    ///
    /// Panics if a branch targets a deleted instruction with no survivor
    /// after it (cannot happen: terminators are never deleted).
    pub fn delete(&mut self, doomed: &std::collections::HashSet<InstId>) {
        if doomed.is_empty() {
            return;
        }
        // Map each deleted id to the id of the next surviving instruction.
        let mut forward: HashMap<InstId, InstId> = HashMap::new();
        let mut next_survivor: Option<InstId> = None;
        for i in self.insts.iter().rev() {
            if doomed.contains(&i.id) {
                let n = next_survivor.expect("deleted trailing instruction had a branch target");
                forward.insert(i.id, n);
            } else {
                next_survivor = Some(i.id);
            }
        }
        self.insts.retain(|i| !doomed.contains(&i.id));
        for i in &mut self.insts {
            if let SMark::BrLocal { target } = &mut i.mark {
                while let Some(&n) = forward.get(target) {
                    *target = n;
                }
            }
        }
    }
}

/// A module in symbolic form: the original module (for its data sections and
/// symbol table) plus symbolic procedures replacing its text.
#[derive(Debug, Clone, PartialEq)]
pub struct SymModule {
    pub source: Module,
    pub procs: Vec<SymProc>,
}

/// The whole program in symbolic form.
#[derive(Debug, Clone)]
pub struct SymProgram {
    pub modules: Vec<SymModule>,
    pub symtab: SymbolTable,
    /// When set (OM-simple), emitted modules retain every original GAT slot
    /// even if no surviving instruction references it: a traditional linker
    /// that only rewrites instructions in place does not reduce the GAT.
    /// OM-full clears this, enabling GAT reduction.
    pub preserve_gat: bool,
}

impl SymProgram {
    /// Total instruction count across the program.
    pub fn inst_count(&self) -> usize {
        self.modules
            .iter()
            .flat_map(|m| m.procs.iter())
            .map(|p| p.insts.len())
            .sum()
    }

    /// Finds a procedure by target reference, if the reference names one.
    pub fn proc_of(&self, r: &GlobalRef) -> Option<(usize, usize)> {
        let GlobalRef::Def { module, sym } = r else { return None };
        let m = &self.modules[*module];
        m.procs
            .iter()
            .position(|p| p.sym == *sym)
            .map(|pi| (*module, pi))
    }
}

/// A symbolic annotation whose symbol references are still *module-local*
/// ([`SymId`]s into the module's own table). This is the program-independent
/// half of [`SMark`]: everything about it is a pure function of one module's
/// bytes, so [`translate_module`] results can be cached by content hash and
/// shared across link requests. [`resolve_symbolic`] turns it into an
/// [`SMark`] once the program-wide symbol table is known.
#[derive(Debug, Clone, PartialEq)]
pub enum LMark {
    None,
    /// GAT address load of `sym + addend` (the module's `.lita` entry).
    Literal { sym: SymId, addend: i64, escaping: bool },
    LituseBase { load: InstId },
    LituseJsr { load: InstId },
    LituseAddr { load: InstId },
    GpdispHi { lo: InstId, anchor: SAnchor },
    GpdispLo { hi: InstId },
    BrSym { sym: SymId, addend: i64 },
    BrLocal { target: InstId },
    Gprel { sym: SymId, addend: i64 },
    GprelHi { sym: SymId, addend: i64 },
    GprelLo { sym: SymId, addend: i64, hi_addend: i64 },
}

/// One instruction of a module-local symbolic procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct LInst {
    pub id: InstId,
    pub inst: Inst,
    pub mark: LMark,
}

/// A procedure in module-local symbolic form.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSymProc {
    pub sym: SymId,
    pub name: String,
    pub vis: Visibility,
    pub insts: Vec<LInst>,
}

/// One module's translation artifact: the decoded, mark-annotated symbolic
/// procedures plus the source module itself. Independent of every other
/// module in the program — the unit of OM's per-module analysis cache.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSymModule {
    pub source: Module,
    pub procs: Vec<LocalSymProc>,
}

/// Resolves a module-local symbol reference to a [`GlobalRef`].
fn resolve_ref(
    source: &Module,
    symtab: &SymbolTable,
    mi: usize,
    sym: SymId,
) -> GlobalRef {
    let s = source.symbol(sym);
    if s.is_defined() && !matches!(s.def, SymbolDef::Common { .. }) {
        return GlobalRef::Def { module: mi, sym };
    }
    if let Some(&(dm, did)) = symtab.globals.get(&s.name) {
        return GlobalRef::Def { module: dm, sym: did };
    }
    GlobalRef::Common { name: s.name.clone() }
}

/// Translates one module into module-local symbolic form — the whole
/// decode/tiling/mark analysis, with no reference to the rest of the
/// program. The result depends only on the module's bytes, which is what
/// makes it cacheable by content hash.
///
/// # Errors
///
/// Returns [`OmError`] if text does not decode, procedures do not tile the
/// text, or relocations are inconsistent — the conservative checks the paper
/// says OM can afford because "it can use the loader symbol table and the
/// relocation tables to clarify the code".
pub fn translate_module(m: &Module) -> Result<LocalSymModule, OmError> {
    let mut procs: Vec<LocalSymProc> = Vec::new();
    let proc_list = m.procedures();
    let reloc_index = m.text_reloc_index();

    // Check tiling.
    let mut expected = 0;
    for (_, s) in &proc_list {
        let SymbolDef::Proc { offset, size, .. } = s.def else { unreachable!() };
        if offset != expected {
            return Err(OmError::BadText {
                module: m.name.clone(),
                offset: expected,
                what: "text not tiled by procedures".into(),
            });
        }
        expected = offset + size;
    }
    if expected != m.text.len() as u64 {
        return Err(OmError::BadText {
            module: m.name.clone(),
            offset: expected,
            what: "trailing text outside any procedure".into(),
        });
    }

    for (sym_id, s) in &proc_list {
        let SymbolDef::Proc { offset, size, .. } = s.def else { unreachable!() };
        let n = (size / 4) as usize;
        let id_of_offset =
            |o: u64| -> Option<InstId> { o.checked_sub(offset).map(|d| (d / 4) as u32) };

        // Pass 1: find escaping loads. Only the *self-referential*
        // LituseAddr marks a load as escaping-with-unknown-uses; a
        // LituseAddr on a different instruction is a known (but
        // unrewritable) use and keeps its own mark.
        let mut escaping: Vec<u64> = Vec::new();
        for k in 0..n {
            let off = offset + 4 * k as u64;
            for r in reloc_index.get(&off).into_iter().flatten() {
                if let RelocKind::LituseAddr { load_offset } = r.kind {
                    if load_offset == off {
                        escaping.push(load_offset);
                    }
                }
            }
        }

        let mut insts = Vec::with_capacity(n);
        for k in 0..n {
            let off = offset + 4 * k as u64;
            let bytes: [u8; 4] =
                m.text[off as usize..off as usize + 4].try_into().unwrap();
            let word = u32::from_le_bytes(bytes);
            let inst = decode(word).map_err(|e| OmError::BadText {
                module: m.name.clone(),
                offset: off,
                what: e.to_string(),
            })?;
            let id = k as InstId;

            let mut mark = LMark::None;
            for r in reloc_index.get(&off).into_iter().flatten() {
                let bad = |what: String| OmError::BadReloc { module: m.name.clone(), what };
                let linked = |load_offset: u64| -> Result<InstId, OmError> {
                    id_of_offset(load_offset)
                        .filter(|&i| (i as usize) < n)
                        .ok_or_else(|| bad(format!("lituse crosses procedures at {off:#x}")))
                };
                match &r.kind {
                    RelocKind::Literal { lita } => {
                        let e: &LitaEntry = &m.lita[*lita as usize];
                        mark = LMark::Literal {
                            sym: e.sym,
                            addend: e.addend,
                            escaping: escaping.contains(&off),
                        };
                    }
                    RelocKind::LituseBase { load_offset } => {
                        mark = LMark::LituseBase { load: linked(*load_offset)? };
                    }
                    RelocKind::LituseJsr { load_offset } => {
                        mark = LMark::LituseJsr { load: linked(*load_offset)? };
                    }
                    RelocKind::LituseAddr { load_offset } => {
                        if *load_offset != off {
                            mark = LMark::LituseAddr { load: linked(*load_offset)? };
                        }
                    }
                    RelocKind::Gpdisp { pair_offset, anchor, .. } => {
                        let lo = id_of_offset((off as i64 + pair_offset) as u64)
                            .filter(|&i| (i as usize) < n)
                            .ok_or_else(|| bad("gpdisp pair crosses procedures".into()))?;
                        let a = if *anchor == offset {
                            SAnchor::Entry
                        } else {
                            let jsr = id_of_offset(anchor - 4)
                                .filter(|&i| (i as usize) < n)
                                .ok_or_else(|| bad("gpdisp anchor outside procedure".into()))?;
                            SAnchor::AfterCall(jsr)
                        };
                        mark = LMark::GpdispHi { lo, anchor: a };
                    }
                    RelocKind::BrAddr { sym, addend } => {
                        mark = LMark::BrSym { sym: *sym, addend: *addend };
                    }
                    RelocKind::Gprel16 { sym, addend, .. } => {
                        mark = LMark::Gprel { sym: *sym, addend: *addend };
                    }
                    RelocKind::GprelHigh { sym, addend, .. } => {
                        mark = LMark::GprelHi { sym: *sym, addend: *addend };
                    }
                    RelocKind::GprelLow { sym, addend, hi_addend, .. } => {
                        mark = LMark::GprelLo {
                            sym: *sym,
                            addend: *addend,
                            hi_addend: *hi_addend,
                        };
                    }
                    RelocKind::RefQuad { .. } => {
                        return Err(bad("refquad in text".into()));
                    }
                }
            }

            // Mark the GPDISP low halves (they carry no relocation).
            insts.push(LInst { id, inst, mark });
        }

        // Second pass over the collected instructions: GpdispLo partners
        // and local branch targets.
        let his: Vec<(usize, InstId)> = insts
            .iter()
            .enumerate()
            .filter_map(|(k, i)| match i.mark {
                LMark::GpdispHi { lo, .. } => Some((k, lo)),
                _ => None,
            })
            .collect();
        for (k, lo) in his {
            let hi_id = insts[k].id;
            let lo_idx = lo as usize;
            if lo_idx >= insts.len() || !matches!(insts[lo_idx].mark, LMark::None) {
                return Err(OmError::BadReloc {
                    module: m.name.clone(),
                    what: format!("gpdisp low half missing in {}", s.name),
                });
            }
            insts[lo_idx].mark = LMark::GpdispLo { hi: hi_id };
        }
        for k in 0..insts.len() {
            if let (Inst::Br { disp, .. }, LMark::None) = (&insts[k].inst, &insts[k].mark) {
                let target = k as i64 + 1 + *disp as i64;
                if target < 0 || target as usize > insts.len() {
                    return Err(OmError::BadText {
                        module: m.name.clone(),
                        offset: offset + 4 * k as u64,
                        what: "branch leaves its procedure".into(),
                    });
                }
                // A branch to the very end would be malformed; our
                // compilers never emit one.
                if target as usize == insts.len() {
                    return Err(OmError::BadText {
                        module: m.name.clone(),
                        offset: offset + 4 * k as u64,
                        what: "branch to procedure end".into(),
                    });
                }
                insts[k].mark = LMark::BrLocal { target: target as InstId };
            }
        }

        procs.push(LocalSymProc {
            sym: *sym_id,
            name: s.name.clone(),
            vis: s.vis,
            insts,
        });
    }
    Ok(LocalSymModule { source: m.clone(), procs })
}

/// Binds per-module translation artifacts into a whole program: every
/// module-local symbol reference is resolved through the program-wide
/// symbol table ([`LMark`] → [`SMark`]). This is the cheap half of
/// [`translate`] — no decoding, just reference resolution — so relinking a
/// program whose modules are all cached costs only this pass.
pub fn resolve_symbolic<M: std::borrow::Borrow<LocalSymModule>>(
    locals: &[M],
    symtab: &SymbolTable,
) -> SymProgram {
    let mut out = Vec::with_capacity(locals.len());
    for (mi, lm) in locals.iter().enumerate() {
        let lm = lm.borrow();
        let src = &lm.source;
        let procs = lm
            .procs
            .iter()
            .map(|p| {
                let insts = p
                    .insts
                    .iter()
                    .map(|i| {
                        let mark = match &i.mark {
                            LMark::None => SMark::None,
                            LMark::Literal { sym, addend, escaping } => SMark::Literal {
                                target: resolve_ref(src, symtab, mi, *sym),
                                addend: *addend,
                                escaping: *escaping,
                            },
                            LMark::LituseBase { load } => SMark::LituseBase { load: *load },
                            LMark::LituseJsr { load } => SMark::LituseJsr { load: *load },
                            LMark::LituseAddr { load } => SMark::LituseAddr { load: *load },
                            LMark::GpdispHi { lo, anchor } => {
                                SMark::GpdispHi { lo: *lo, anchor: *anchor }
                            }
                            LMark::GpdispLo { hi } => SMark::GpdispLo { hi: *hi },
                            LMark::BrSym { sym, addend } => SMark::BrSym {
                                target: resolve_ref(src, symtab, mi, *sym),
                                addend: *addend,
                            },
                            LMark::BrLocal { target } => SMark::BrLocal { target: *target },
                            LMark::Gprel { sym, addend } => SMark::Gprel {
                                target: resolve_ref(src, symtab, mi, *sym),
                                addend: *addend,
                            },
                            LMark::GprelHi { sym, addend } => SMark::GprelHi {
                                target: resolve_ref(src, symtab, mi, *sym),
                                addend: *addend,
                            },
                            LMark::GprelLo { sym, addend, hi_addend } => SMark::GprelLo {
                                target: resolve_ref(src, symtab, mi, *sym),
                                addend: *addend,
                                hi_addend: *hi_addend,
                            },
                        };
                        SInst { id: i.id, inst: i.inst, mark }
                    })
                    .collect::<Vec<_>>();
                SymProc {
                    sym: p.sym,
                    name: p.name.clone(),
                    vis: p.vis,
                    next_id: insts.len() as InstId,
                    insts,
                }
            })
            .collect();
        out.push(SymModule { source: src.clone(), procs });
    }
    SymProgram { modules: out, symtab: symtab.clone(), preserve_gat: true }
}

/// Translates the whole program into symbolic form: [`translate_module`]
/// per module, bound together by [`resolve_symbolic`].
///
/// # Errors
///
/// Returns [`OmError`] if any module fails translation (see
/// [`translate_module`]).
pub fn translate(modules: &[Module], symtab: &SymbolTable) -> Result<SymProgram, OmError> {
    let locals = modules
        .iter()
        .map(translate_module)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(resolve_symbolic(&locals, symtab))
}

/// Lowers one symbolic module back to object code.
///
/// The returned module preserves the source's symbol-table order (so
/// `GlobalRef::Def` indices remain valid across emit/translate rounds),
/// appending externs for any newly cross-module references, and rebuilds the
/// text, `.lita`, and text relocations from the symbolic procedures.
///
/// # Errors
///
/// Returns [`OmError::Internal`] on dangling symbolic references — these
/// indicate a transformation bug, but a link server must report them to the
/// offending request rather than abort the process.
pub fn emit_module(program: &SymProgram, mi: usize) -> Result<Module, OmError> {
    let sm = &program.modules[mi];
    let src = &sm.source;
    let mut m = Module::new(src.name.clone());
    m.data = src.data.clone();
    m.sdata = src.sdata.clone();
    m.sbss_size = src.sbss_size;
    m.bss_size = src.bss_size;
    m.symbols = src.symbols.clone();
    // Keep non-text relocations (data RefQuads).
    m.relocs = src
        .relocs
        .iter()
        .filter(|r| r.sec != SecId::Text)
        .cloned()
        .collect();

    let mut name_to_id: HashMap<String, SymId> = m
        .symbols
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.clone(), SymId(i as u32)))
        .collect();
    let mut lita_interned: HashMap<(SymId, i64), u32> = HashMap::new();

    let local_sym = |m: &mut Module,
                         name_to_id: &mut HashMap<String, SymId>,
                         r: &GlobalRef|
     -> Result<SymId, OmError> {
        match r {
            GlobalRef::Def { module, sym } => {
                if *module == mi {
                    return Ok(*sym);
                }
                let target = program.modules[*module].source.symbol(*sym);
                if target.vis != Visibility::Exported {
                    return Err(OmError::Internal {
                        context: "emit".into(),
                        what: format!(
                            "cross-module reference to local symbol {}",
                            target.name
                        ),
                    });
                }
                Ok(*name_to_id.entry(target.name.clone()).or_insert_with(|| {
                    let id = SymId(m.symbols.len() as u32);
                    m.symbols.push(Symbol::external(&target.name));
                    id
                }))
            }
            GlobalRef::Common { name } => {
                Ok(*name_to_id.entry(name.clone()).or_insert_with(|| {
                    let id = SymId(m.symbols.len() as u32);
                    m.symbols.push(Symbol::external(name));
                    id
                }))
            }
        }
    };

    for p in &sm.procs {
        let start = m.text.len() as u64;
        // Offsets by id.
        let mut off_of: HashMap<InstId, u64> = HashMap::new();
        for (k, i) in p.insts.iter().enumerate() {
            off_of.insert(i.id, start + 4 * k as u64);
        }
        // A mark naming an instruction id absent from the procedure is a
        // transformation bug (the former `index_of` panic class); surface it
        // as a typed error so one bad request cannot take down a server.
        let off = |id: &InstId| -> Result<u64, OmError> {
            off_of.get(id).copied().ok_or_else(|| OmError::Internal {
                context: "emit".into(),
                what: format!("dangling instruction id {id} in {}", p.name),
            })
        };
        for (k, si) in p.insts.iter().enumerate() {
            let here = start + 4 * k as u64;
            let mut inst = si.inst;
            match &si.mark {
                SMark::None => {}
                SMark::Literal { target, addend, escaping } => {
                    let sym = local_sym(&mut m, &mut name_to_id, target)?;
                    let slot = *lita_interned.entry((sym, *addend)).or_insert_with(|| {
                        let i = m.lita.len() as u32;
                        m.lita.push(LitaEntry { sym, addend: *addend });
                        i
                    });
                    m.relocs.push(Reloc::text(here, RelocKind::Literal { lita: slot }));
                    if *escaping {
                        m.relocs
                            .push(Reloc::text(here, RelocKind::LituseAddr { load_offset: here }));
                    }
                }
                SMark::LituseBase { load } => {
                    m.relocs.push(Reloc::text(
                        here,
                        RelocKind::LituseBase { load_offset: off(load)? },
                    ));
                }
                SMark::LituseJsr { load } => {
                    m.relocs.push(Reloc::text(
                        here,
                        RelocKind::LituseJsr { load_offset: off(load)? },
                    ));
                }
                SMark::LituseAddr { load } => {
                    m.relocs.push(Reloc::text(
                        here,
                        RelocKind::LituseAddr { load_offset: off(load)? },
                    ));
                }
                SMark::GpdispHi { lo, anchor } => {
                    let anchor_off = match anchor {
                        SAnchor::Entry => start,
                        SAnchor::AfterCall(jsr) => off(jsr)? + 4,
                    };
                    m.relocs.push(Reloc::text(
                        here,
                        RelocKind::Gpdisp {
                            pair_offset: off(lo)? as i64 - here as i64,
                            anchor: anchor_off,
                            gp_group: 0,
                        },
                    ));
                }
                SMark::GpdispLo { .. } => {}
                SMark::BrSym { target, addend } => {
                    let sym = local_sym(&mut m, &mut name_to_id, target)?;
                    m.relocs
                        .push(Reloc::text(here, RelocKind::BrAddr { sym, addend: *addend }));
                }
                SMark::BrLocal { target } => {
                    let toff = off(target)?;
                    let disp = (toff as i64 - (here as i64 + 4)) / 4;
                    if let Inst::Br { op, ra, .. } = inst {
                        inst = Inst::Br { op, ra, disp: disp as i32 };
                    } else {
                        return Err(OmError::Internal {
                            context: "emit".into(),
                            what: format!("BrLocal on non-branch in {}", p.name),
                        });
                    }
                }
                SMark::Gprel { target, addend } => {
                    let sym = local_sym(&mut m, &mut name_to_id, target)?;
                    m.relocs.push(Reloc::text(
                        here,
                        RelocKind::Gprel16 { sym, addend: *addend, gp_group: 0 },
                    ));
                }
                SMark::GprelHi { target, addend } => {
                    let sym = local_sym(&mut m, &mut name_to_id, target)?;
                    m.relocs.push(Reloc::text(
                        here,
                        RelocKind::GprelHigh { sym, addend: *addend, gp_group: 0 },
                    ));
                }
                SMark::GprelLo { target, addend, hi_addend } => {
                    let sym = local_sym(&mut m, &mut name_to_id, target)?;
                    m.relocs.push(Reloc::text(
                        here,
                        RelocKind::GprelLow {
                            sym,
                            addend: *addend,
                            hi_addend: *hi_addend,
                            gp_group: 0,
                        },
                    ));
                }
            }
            m.text.extend_from_slice(&om_alpha::encode(inst).to_le_bytes());
        }
        // Update the procedure symbol in place.
        let size = m.text.len() as u64 - start;
        let entry = m.symbols.get_mut(p.sym.0 as usize).ok_or_else(|| OmError::Internal {
            context: "emit".into(),
            what: format!("procedure symbol id {} out of range in {}", p.sym.0, p.name),
        })?;
        if let SymbolDef::Proc { offset, size: sz, .. } = &mut entry.def {
            *offset = start;
            *sz = size;
        } else {
            return Err(OmError::Internal {
                context: "emit".into(),
                what: format!("procedure symbol {} is not a proc", p.name),
            });
        }
    }

    // OM-simple never shrinks the GAT: re-add original slots that no longer
    // have a referencing instruction.
    if program.preserve_gat {
        for e in &src.lita {
            if let std::collections::hash_map::Entry::Vacant(v) =
                lita_interned.entry((e.sym, e.addend))
            {
                v.insert(m.lita.len() as u32);
                m.lita.push(*e);
            }
        }
    }

    m.relocs.sort_by_key(|r| {
        let rank = match r.kind {
            RelocKind::Gpdisp { .. } => 0,
            RelocKind::Literal { .. } => 1,
            _ => 2,
        };
        (r.sec, r.offset, rank)
    });
    Ok(m)
}

/// Emits every module of the program.
///
/// # Errors
///
/// Returns [`OmError::Internal`] if any module has dangling symbolic
/// references (see [`emit_module`]).
pub fn emit_all(program: &SymProgram) -> Result<Vec<Module>, OmError> {
    (0..program.modules.len())
        .map(|mi| emit_module(program, mi))
        .collect()
}
