//! Whole-program analysis over the symbolic form: layout snapshots, call-site
//! recognition, address-load use indexing, and the address-taken set.
//!
//! This is the "rather deeper understanding of the program control flow than
//! has hitherto been typical for linkers" (§3) — easy here because the loader
//! format hands OM procedure boundaries, GP ownership, and LITUSE links.

use crate::sym::{GlobalRef, InstId, OmError, SAnchor, SInst, SMark, SymProc, SymProgram};
use om_alpha::{Effects, Inst, JmpOp, Reg};
use om_linker::{layout, sym_addr, LayoutOpts, ProgramLayout, SymbolTable};
use om_objfile::{Module, RelocKind, SymbolDef};
use std::collections::{HashMap, HashSet};

/// A provisional whole-program layout used for reachability decisions.
///
/// Distances only shrink as OM deletes instructions and GAT slots, so any
/// "fits in 16/21 bits" decision made against a snapshot remains valid for
/// the final layout.
pub struct Snapshot {
    pub modules: Vec<Module>,
    pub symtab: SymbolTable,
    pub layout: ProgramLayout,
}

impl Snapshot {
    /// Emits the current symbolic program and lays it out with OM's layout
    /// policy (commons sorted by size near the GAT, unless ablated).
    ///
    /// # Errors
    ///
    /// Propagates symbol-table or layout failures.
    pub fn capture(program: &SymProgram) -> Result<Snapshot, OmError> {
        Snapshot::capture_with(program, true)
    }

    /// [`Snapshot::capture`] with an explicit common-sorting policy (used by
    /// the ablation harness).
    ///
    /// # Errors
    ///
    /// Propagates symbol-table or layout failures.
    pub fn capture_with(program: &SymProgram, sort_commons: bool) -> Result<Snapshot, OmError> {
        let modules = crate::sym::emit_all(program)?;
        let symtab = om_linker::build_symbol_table(&modules)?;
        let lay = layout(&modules, &symtab, &LayoutOpts { sort_commons })?;
        Ok(Snapshot { modules, symtab, layout: lay })
    }

    /// Address of a resolved reference.
    ///
    /// # Panics
    ///
    /// Panics on dangling references (cannot happen after `capture`).
    pub fn addr(&self, r: &GlobalRef) -> u64 {
        match r {
            GlobalRef::Def { module, sym } => {
                sym_addr(&self.modules, &self.symtab, &self.layout, *module, *sym)
                    .expect("resolved reference")
            }
            GlobalRef::Common { name } => self.layout.common_addr[name],
        }
    }

    /// GP value used by module `mi`.
    pub fn gp(&self, mi: usize) -> u64 {
        self.layout.gp_values[self.layout.group_of_module[mi] as usize]
    }

    /// GAT group of module `mi`.
    pub fn group(&self, mi: usize) -> u32 {
        self.layout.group_of_module[mi]
    }

    /// True when the whole program shares one GP value — the common case the
    /// paper highlights ("most often one is enough"), which lets OM drop
    /// GP-resets even after calls through procedure variables.
    pub fn single_group(&self) -> bool {
        self.layout.gp_values.len() == 1
    }

    /// Text address of instruction `idx` of procedure `pi` in module `mi`.
    pub fn inst_addr(&self, program: &SymProgram, mi: usize, pi: usize, idx: usize) -> u64 {
        let mut off = 0u64;
        for p in &program.modules[mi].procs[..pi] {
            off += 4 * p.insts.len() as u64;
        }
        self.layout.bases[mi].text + off + 4 * idx as u64
    }

    /// Number of merged GAT slots in this snapshot.
    pub fn gat_slots(&self) -> usize {
        self.layout.gat_slots
    }
}

/// How a call site transfers control.
#[derive(Debug, Clone, PartialEq)]
pub enum CallKind {
    /// `ldq pv, lit(gp); jsr` — the conservative sequence.
    DirectJsr { load: InstId, target: GlobalRef },
    /// A BSR the compiler already emitted (intra-unit static call) or that a
    /// previous OM pass produced (`addend` = 8 when it skips the prologue).
    Bsr { target: GlobalRef, addend: i64 },
    /// JSR through a procedure variable: target unknowable.
    Indirect,
}

/// One recognized call site in a procedure.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the JSR/BSR instruction.
    pub at: usize,
    pub kind: CallKind,
    /// Ids of the after-call GP-reset pair `(hi, lo)`, if present.
    pub gp_reset: Option<(InstId, InstId)>,
}

/// Finds the call sites of `proc`.
pub fn call_sites(proc: &SymProc) -> Vec<CallSite> {
    // Map jsr id → gp-reset pair ids.
    let mut resets: HashMap<InstId, (InstId, InstId)> = HashMap::new();
    for i in &proc.insts {
        if let SMark::GpdispHi { lo, anchor: SAnchor::AfterCall(jsr) } = i.mark {
            resets.insert(jsr, (i.id, lo));
        }
    }
    let mut out = Vec::new();
    for (k, i) in proc.insts.iter().enumerate() {
        match (&i.inst, &i.mark) {
            (Inst::Jmp { op: JmpOp::Jsr, .. }, SMark::LituseJsr { load }) => {
                let target = proc
                    .insts
                    .iter()
                    .find(|l| l.id == *load)
                    .and_then(|l| match &l.mark {
                        SMark::Literal { target, .. } => Some(target.clone()),
                        _ => None,
                    });
                let kind = match target {
                    Some(t) => CallKind::DirectJsr { load: *load, target: t },
                    None => CallKind::Indirect, // load already transformed
                };
                out.push(CallSite { at: k, kind, gp_reset: resets.get(&i.id).copied() });
            }
            (Inst::Jmp { op: JmpOp::Jsr, .. }, SMark::None) => {
                out.push(CallSite {
                    at: k,
                    kind: CallKind::Indirect,
                    gp_reset: resets.get(&i.id).copied(),
                });
            }
            (Inst::Br { op: om_alpha::BrOp::Bsr, .. }, SMark::BrSym { target, addend }) => {
                out.push(CallSite {
                    at: k,
                    kind: CallKind::Bsr { target: target.clone(), addend: *addend },
                    gp_reset: resets.get(&i.id).copied(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Index of LITUSE consumers per address load: `load id → (use index, kind)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    Base,
    Jsr,
    Addr,
}

/// Builds the use index of a procedure.
pub fn use_index(proc: &SymProc) -> HashMap<InstId, Vec<(usize, UseKind)>> {
    let mut map: HashMap<InstId, Vec<(usize, UseKind)>> = HashMap::new();
    for (k, i) in proc.insts.iter().enumerate() {
        let (load, kind) = match i.mark {
            SMark::LituseBase { load } => (load, UseKind::Base),
            SMark::LituseJsr { load } => (load, UseKind::Jsr),
            SMark::LituseAddr { load } => (load, UseKind::Addr),
            _ => continue,
        };
        map.entry(load).or_default().push((k, kind));
    }
    map
}

/// Computes the set of procedures whose address escapes: referenced by an
/// escaping GAT load anywhere, stored in initialized data (`RefQuad`), or
/// the program entry. OM-full must keep these procedures' prologues.
pub fn address_taken(program: &SymProgram) -> HashSet<GlobalRef> {
    let mut taken = HashSet::new();
    for (mi, m) in program.modules.iter().enumerate() {
        for p in &m.procs {
            // Loads whose value feeds address arithmetic count as escapes
            // too (conservative: the computed address could be anything).
            let uses = use_index(p);
            for i in &p.insts {
                if let SMark::Literal { target, escaping, .. } = &i.mark {
                    let has_addr_use = uses
                        .get(&i.id)
                        .is_some_and(|us| us.iter().any(|&(_, k)| k == UseKind::Addr));
                    if *escaping || has_addr_use {
                        taken.insert(target.clone());
                    }
                }
            }
        }
        // Data-section pointers to procedures (initialized fnptr globals).
        for r in &m.source.relocs {
            if r.sec == om_objfile::SecId::Text {
                continue;
            }
            if let RelocKind::RefQuad { sym, .. } = r.kind {
                taken.insert(crate::analysis::resolve_like(program, mi, sym));
            }
        }
        // The entry procedure.
        for p in &m.procs {
            if p.name == "__start" {
                taken.insert(GlobalRef::Def { module: mi, sym: p.sym });
            }
        }
    }
    taken
}

/// Resolves a module-local symbol id the same way translation did.
pub fn resolve_like(program: &SymProgram, mi: usize, sym: om_objfile::SymId) -> GlobalRef {
    let s = program.modules[mi].source.symbol(sym);
    if s.is_defined() && !matches!(s.def, SymbolDef::Common { .. }) {
        return GlobalRef::Def { module: mi, sym };
    }
    if let Some(&(dm, did)) = program.symtab.globals.get(&s.name) {
        return GlobalRef::Def { module: dm, sym: did };
    }
    GlobalRef::Common { name: s.name.clone() }
}

/// True if the procedure's first two instructions are its entry GPDISP pair.
pub fn prologue_pair_at_entry(proc: &SymProc) -> Option<(InstId, InstId)> {
    let first = proc.insts.first()?;
    if let SMark::GpdispHi { lo, anchor: SAnchor::Entry } = first.mark {
        let second = proc.insts.get(1)?;
        if second.id == lo {
            return Some((first.id, lo));
        }
    }
    None
}

/// Finds the entry GPDISP pair anywhere in the procedure.
pub fn find_entry_pair(proc: &SymProc) -> Option<(usize, usize)> {
    let hi = proc.insts.iter().position(
        |i| matches!(i.mark, SMark::GpdispHi { anchor: SAnchor::Entry, .. }),
    )?;
    let SMark::GpdispHi { lo, .. } = proc.insts[hi].mark else { unreachable!() };
    let lo_idx = proc.insts.iter().position(|i| i.id == lo)?;
    Some((hi, lo_idx))
}

/// True if any instruction outside `exclude` reads the *incoming* PV value —
/// a conservative veto on removing PV setup for this procedure.
///
/// PV reads at JSR instructions don't count: every call site establishes its
/// own PV immediately beforehand (the compiler's calling convention), so a
/// recursive procedure's internal calls never depend on the PV its callers
/// passed in.
pub fn reads_pv_outside(proc: &SymProc, exclude: &[InstId]) -> bool {
    proc.insts.iter().any(|i| {
        !exclude.contains(&i.id)
            && !matches!(i.inst, Inst::Jmp { op: JmpOp::Jsr, .. })
            && Effects::of(&i.inst).reads_int(Reg::PV)
    })
}

/// Counts instructions that retire as no-ops.
pub fn count_nops(proc: &SymProc) -> usize {
    proc.insts.iter().filter(|i| i.inst.is_nop()).count()
}

/// All instructions of a procedure as `(index, &SInst)` that are address
/// loads still in GAT form.
pub fn literal_loads(proc: &SymProc) -> Vec<usize> {
    proc.insts
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i.mark, SMark::Literal { .. }))
        .map(|(k, _)| k)
        .collect()
}

/// The link name a [`GlobalRef`] resolves to.
pub fn ref_name<'a>(program: &'a SymProgram, r: &'a GlobalRef) -> &'a str {
    match r {
        GlobalRef::Def { module, sym } => &program.modules[*module].source.symbol(*sym).name,
        GlobalRef::Common { name } => name,
    }
}

/// The destination register of an address load (`ra` of the LDQ).
pub fn load_dest(i: &SInst) -> Reg {
    match i.inst {
        Inst::Mem { ra, .. } => ra,
        _ => panic!("address load is not a memory instruction"),
    }
}
