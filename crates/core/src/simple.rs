//! OM-simple: the address-calculation optimizations a traditional linker
//! could perform — local analysis only, one-for-one instruction replacement,
//! never moving code (§4).
//!
//! * address loads are *converted* to LDA (16-bit GP reach) or LDAH+fixed-up
//!   use (32-bit reach), or *nullified* to no-ops when every use can absorb a
//!   16-bit GP displacement;
//! * JSRs become BSRs when the destination is near enough;
//! * a BSR can skip the destination's prologue — and its PV load can be
//!   nullified — only when the GPDISP pair is literally the first two
//!   instructions (compile-time scheduling usually moved it, which is why
//!   this rarely fires, exactly as the paper reports);
//! * after-call GP resets become no-ops when caller and callee share a GAT;
//! * commons are sorted by size near the GAT (a layout policy, applied when
//!   the optimized program is linked).

use crate::analysis::{
    call_sites, load_dest, prologue_pair_at_entry, reads_pv_outside, use_index, CallKind,
    Snapshot, UseKind,
};
use crate::fault::{armed, FaultKind, FaultPlan};
use crate::pipeline::CallBook;
use crate::stats::OmStats;
use crate::sym::{GlobalRef, OmError, SMark, SymProgram};
use om_alpha::{BrOp, Inst, MemOp, Reg};
use std::collections::HashSet;

/// True if `disp` fits a branch's signed 21-bit word-displacement field.
pub fn bsr_reachable(from: u64, to: u64) -> bool {
    let delta = to as i64 - (from as i64 + 4);
    if delta % 4 != 0 {
        return false;
    }
    let words = delta / 4;
    (-(1 << 20)..(1 << 20)).contains(&words)
}

/// Runs OM-simple over the program.
///
/// # Errors
///
/// Propagates snapshot (layout) failures.
pub fn run(
    program: &mut SymProgram,
    stats: &mut OmStats,
    book: &mut CallBook,
) -> Result<(), OmError> {
    run_with(program, stats, book, &crate::pipeline::OmOptions::default())
}

/// [`run`] with explicit ablation options.
///
/// # Errors
///
/// Propagates snapshot (layout) failures.
pub fn run_with(
    program: &mut SymProgram,
    stats: &mut OmStats,
    book: &mut CallBook,
    options: &crate::pipeline::OmOptions,
) -> Result<(), OmError> {
    program.preserve_gat = true;
    let snap = Snapshot::capture_with(program, options.sort_commons)?;
    let preempt: HashSet<&str> = options.preemptible.iter().map(String::as_str).collect();
    let m = crate::obs::PassMeter::begin("calls", stats);
    transform_calls(program, &snap, stats, book, &preempt);
    m.end(stats);
    let m = crate::obs::PassMeter::begin("convert", stats);
    transform_address_loads(program, &snap, stats, &preempt, options.fault.as_ref());
    m.end(stats);
    Ok(())
}

/// Rewrites call sites: JSR→BSR, prologue skipping, GP-reset nullification.
pub fn transform_calls(
    program: &mut SymProgram,
    snap: &Snapshot,
    stats: &mut OmStats,
    book: &mut CallBook,
    preempt: &HashSet<&str>,
) {
    let single_group = snap.single_group();
    let nmods = program.modules.len();
    for mi in 0..nmods {
        let nprocs = program.modules[mi].procs.len();
        for pi in 0..nprocs {
            let sites = call_sites(&program.modules[mi].procs[pi]);
            let uses = use_index(&program.modules[mi].procs[pi]);
            for site in sites {
                let jsr_id = program.modules[mi].procs[pi].insts[site.at].id;
                let key = (mi, pi, jsr_id);

                // GP reset removal condition. A preemptible callee might be
                // replaced at dynamic-link time by code in another GAT group,
                // so nothing about it can be assumed.
                let same_gp_target = match &site.kind {
                    CallKind::DirectJsr { target, .. } | CallKind::Bsr { target, .. } => {
                        if preempt.contains(crate::analysis::ref_name(program, target)) {
                            false
                        } else {
                            match target {
                                GlobalRef::Def { module, .. } => {
                                    snap.group(mi) == snap.group(*module)
                                }
                                GlobalRef::Common { .. } => single_group,
                            }
                        }
                    }
                    CallKind::Indirect => single_group,
                };
                if let Some((hi, lo)) = site.gp_reset {
                    if same_gp_target {
                        let proc = &mut program.modules[mi].procs[pi];
                        for id in [hi, lo] {
                            let idx = proc.index_of(id);
                            proc.insts[idx].inst = Inst::nop();
                            proc.insts[idx].mark = SMark::None;
                        }
                        stats.insts_nullified += 2;
                        book.entry(key).or_insert((false, true)).1 = false;
                    }
                }

                // JSR → BSR conversion (never for preemptible targets: the
                // dynamic linker may bind the call elsewhere).
                let CallKind::DirectJsr { load, target } = site.kind else { continue };
                if preempt.contains(crate::analysis::ref_name(program, &target)) {
                    continue;
                }
                let Some((tm, tp)) = program.proc_of(&target) else { continue };
                let jsr_addr = snap.inst_addr(program, mi, pi, site.at);
                let target_addr = snap.addr(&target);
                if !bsr_reachable(jsr_addr, target_addr) {
                    continue;
                }

                // Decide whether the BSR can skip the prologue and drop PV.
                let mut addend = 0i64;
                let mut kill_load = false;
                let same_gp = snap.group(mi) == snap.group(tm);
                if same_gp {
                    let tproc = &program.modules[tm].procs[tp];
                    if let Some((hi, lo)) = prologue_pair_at_entry(tproc) {
                        let sole_use = uses
                            .get(&load)
                            .map(|u| u.len() == 1 && u[0].1 == UseKind::Jsr)
                            .unwrap_or(false);
                        if sole_use && !reads_pv_outside(tproc, &[hi, lo]) {
                            addend = 8;
                            kill_load = true;
                        }
                    }
                }

                let proc = &mut program.modules[mi].procs[pi];
                proc.insts[site.at].inst = Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 0 };
                proc.insts[site.at].mark = SMark::BrSym { target: target.clone(), addend };
                stats.calls_jsr_to_bsr += 1;
                if kill_load {
                    let li = proc.index_of(load);
                    proc.insts[li].inst = Inst::nop();
                    proc.insts[li].mark = SMark::None;
                    stats.insts_nullified += 1;
                    stats.addr_loads_nullified += 1;
                    book.entry(key).or_insert((true, false)).0 = false;
                }
            }
        }
    }
}

/// Converts or nullifies GAT address loads.
pub fn transform_address_loads(
    program: &mut SymProgram,
    snap: &Snapshot,
    stats: &mut OmStats,
    preempt: &HashSet<&str>,
    fault: Option<&FaultPlan>,
) {
    let nmods = program.modules.len();
    for mi in 0..nmods {
        let gp = snap.gp(mi);
        let nprocs = program.modules[mi].procs.len();
        for pi in 0..nprocs {
            let uses = use_index(&program.modules[mi].procs[pi]);
            let loads = crate::analysis::literal_loads(&program.modules[mi].procs[pi]);
            // [`FaultKind::NullifyDelete`] removes an instruction mid-walk;
            // deferring the deletion keeps the collected indices valid.
            let mut delete_after: Vec<crate::sym::InstId> = Vec::new();
            for k in loads {
                let (load_id, target, addend, escaping, rd) = {
                    let i = &program.modules[mi].procs[pi].insts[k];
                    let SMark::Literal { target, addend, escaping } = &i.mark else {
                        unreachable!()
                    };
                    (i.id, target.clone(), *addend, *escaping, load_dest(i))
                };
                // A preemptible object's final address is unknown until
                // dynamic-link time: its GAT slot must survive untouched.
                if preempt.contains(crate::analysis::ref_name(program, &target)) {
                    continue;
                }
                let us = uses.get(&load_id).cloned().unwrap_or_default();
                if us.iter().any(|&(_, k)| k == UseKind::Jsr) {
                    // A PV load for a call that stayed a JSR: the call-site
                    // transform owns it.
                    continue;
                }

                let target_addr = snap.addr(&target).wrapping_add(addend as u64);
                let disp = target_addr as i64 - gp as i64;
                let rewritable = !escaping && !us.is_empty()
                    && us.iter().all(|&(_, k)| k == UseKind::Base);

                let proc = &mut program.modules[mi].procs[pi];
                if rewritable {
                    let use_disps: Vec<(usize, i64)> = us
                        .iter()
                        .map(|&(ui, _)| match proc.insts[ui].inst {
                            Inst::Mem { disp, .. } => (ui, disp as i64),
                            _ => unreachable!("base use is a memory instruction"),
                        })
                        .collect();

                    let all_fit_16 = use_disps
                        .iter()
                        .all(|&(_, d)| i16::try_from(disp + d).is_ok());
                    if all_fit_16 {
                        // Fault point: every use's rewritten addend is off by
                        // +8 — carried consistently into the relocations, so
                        // only execution can notice.
                        let skew = if armed(fault, FaultKind::AddendSkew) { 8 } else { 0 };
                        // Nullify: every use absorbs its own GP displacement,
                        // addressing directly off GP.
                        for &(ui, d) in &use_disps {
                            set_mem_disp(&mut proc.insts[ui].inst, 0);
                            set_mem_base(&mut proc.insts[ui].inst, Reg::GP);
                            proc.insts[ui].mark = SMark::Gprel {
                                target: target.clone(),
                                addend: addend + d + skew,
                            };
                        }
                        if armed(fault, FaultKind::NullifyDelete) {
                            // Fault point: drop the load instead of no-op'ing
                            // it, leaving the nullification count inflated.
                            delete_after.push(load_id);
                        } else {
                            proc.insts[k].inst = Inst::nop();
                            proc.insts[k].mark = SMark::None;
                        }
                        stats.insts_nullified += 1;
                        stats.addr_loads_nullified += 1;
                        continue;
                    }

                    // 32-bit conversion requires a single shared displacement
                    // so the LDAH high half is exact for every use.
                    let d0 = use_disps[0].1;
                    if use_disps.iter().all(|&(_, d)| d == d0) {
                        proc.insts[k].inst = Inst::Mem {
                            op: MemOp::Ldah,
                            ra: rd,
                            rb: Reg::GP,
                            disp: 0,
                        };
                        proc.insts[k].mark = SMark::GprelHi {
                            target: target.clone(),
                            addend: addend + d0,
                        };
                        for &(ui, _) in &use_disps {
                            set_mem_disp(&mut proc.insts[ui].inst, 0);
                            set_mem_base(&mut proc.insts[ui].inst, rd);
                            proc.insts[ui].mark = SMark::GprelLo {
                                target: target.clone(),
                                addend: addend + d0,
                                hi_addend: addend + d0,
                            };
                        }
                        stats.addr_loads_converted += 1;
                    }
                    continue;
                }

                // Escaping (or use-free) load: the register must still receive
                // the exact address, so only a single-instruction LDA works —
                // and only within the 16-bit window.
                if i16::try_from(disp).is_ok() {
                    proc.insts[k].inst = Inst::Mem {
                        op: MemOp::Lda,
                        ra: rd,
                        rb: Reg::GP,
                        disp: 0,
                    };
                    proc.insts[k].mark = SMark::Gprel { target: target.clone(), addend };
                    // The load is no longer a GAT literal; detach its use
                    // links (the consumers are unchanged — the register holds
                    // the same address).
                    for i in proc.insts.iter_mut() {
                        if matches!(
                            i.mark,
                            SMark::LituseAddr { load } | SMark::LituseBase { load }
                                if load == load_id
                        ) {
                            i.mark = SMark::None;
                        }
                    }
                    stats.addr_loads_converted += 1;
                }
            }
            if !delete_after.is_empty() {
                let doomed: HashSet<crate::sym::InstId> = delete_after.into_iter().collect();
                program.modules[mi].procs[pi].delete(&doomed);
            }
        }
    }
}

fn set_mem_disp(inst: &mut Inst, d: i16) {
    if let Inst::Mem { disp, .. } = inst {
        *disp = d;
    } else {
        panic!("displacement rewrite on non-memory instruction");
    }
}

fn set_mem_base(inst: &mut Inst, base: Reg) {
    if let Inst::Mem { rb, .. } = inst {
        *rb = base;
    } else {
        panic!("base rewrite on non-memory instruction");
    }
}
