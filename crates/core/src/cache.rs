//! The shared relink cache: a keyed LRU with in-flight coalescing.
//!
//! This promotes PR 1's per-process `OnceLock` memo grid into a real
//! bounded, shared, content-addressed store — the heart of `omd`'s
//! incremental relinking. Two properties matter beyond plain memoization:
//!
//! * **Coalescing**: when N requests need the same missing key
//!   concurrently, exactly one computes it; the rest block on a condvar and
//!   observe the finished value as hits. This makes hit/miss accounting
//!   deterministic at any thread width — a property the counter tests pin.
//! * **Poison safety**: a computation that fails (typed error) or panics
//!   must not wedge the slot. An RAII guard removes the in-flight
//!   reservation and wakes all waiters, who then retry the compute
//!   themselves; the failed entry is counted in `aborts` and never served.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Cache observability counters (a snapshot; see [`Lru::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready entry — including waiters that blocked
    /// on an in-flight computation and received its value.
    pub hits: u64,
    /// Lookups that had to compute the value themselves.
    pub misses: u64,
    /// Ready entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// Computations that ended in an error or panic; their reservation was
    /// released instead of becoming an entry.
    pub aborts: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

enum Slot<V> {
    /// A computed value and its last-touch stamp (for LRU eviction).
    Ready(Arc<V>, u64),
    /// Some thread is computing this key; waiters block on the condvar.
    InFlight,
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Monotonic touch counter; the ready entry with the smallest stamp is
    /// the least recently used.
    tick: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe, coalescing LRU keyed store.
pub struct Lru<K, V> {
    inner: Mutex<Inner<K, V>>,
    cond: Condvar,
    cap: usize,
    /// Observability name: [`Lru::named`] caches report each hit / miss /
    /// coalesced wait / eviction / abort as a `cache.<name>.<event>`
    /// counter on the caller's installed [`om_obs::Trace`]. Coalescing
    /// makes these counts deterministic at any thread width.
    name: Option<&'static str>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `cap` ready entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
            name: None,
        }
    }

    /// [`Lru::new`], reporting cache events as `cache.<name>.*` counters on
    /// the installed trace.
    pub fn named(cap: usize, name: &'static str) -> Lru<K, V> {
        Lru { name: Some(name), ..Lru::new(cap) }
    }

    /// Records one cache event on the installed trace (inert when the cache
    /// is unnamed or no trace is installed on this thread).
    fn note(&self, event: &str) {
        if let Some(name) = self.name {
            if om_obs::enabled() {
                om_obs::count(&format!("cache.{name}.{event}"), 1);
            }
        }
    }

    /// Number of ready entries.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.map.values().filter(|s| matches!(s, Slot::Ready(..))).count()
    }

    /// True when no entry is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Looks up `key`, computing it with `f` on a miss. Concurrent lookups
    /// of the same missing key coalesce: one computes, the rest wait and
    /// count as hits. Returns the value and whether this lookup was a hit.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error to the computing caller. Waiters retry the
    /// computation themselves (each failure is independent), so an error
    /// never poisons the slot for future lookups.
    pub fn get_or_try<E>(
        &self,
        key: K,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<(Arc<V>, bool), E> {
        let mut waited = false;
        let mut inner = self.inner.lock().unwrap();
        loop {
            // Monotonic touch stamp, taken before borrowing the slot (the
            // occasional bump on a wait round is harmless).
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key) {
                Some(Slot::Ready(v, stamp)) => {
                    let v = Arc::clone(v);
                    *stamp = tick;
                    inner.stats.hits += 1;
                    drop(inner);
                    self.note("hit");
                    if waited {
                        self.note("coalesced");
                    }
                    return Ok((v, true));
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    inner = self.cond.wait(inner).unwrap();
                    // Loop: the slot is now ready (hit), gone (the computer
                    // failed — retry the compute ourselves), or in flight
                    // again under another thread.
                }
                None => break,
            }
        }
        inner.map.insert(key.clone(), Slot::InFlight);
        inner.stats.misses += 1;
        drop(inner);
        self.note("miss");

        // Compute without the lock. The guard un-reserves the slot if `f`
        // errors or panics — waiters wake and retry instead of hanging.
        struct ClearOnDrop<'a, K: Eq + Hash + Clone, V> {
            cache: &'a Lru<K, V>,
            key: &'a K,
            disarm: bool,
        }
        impl<K: Eq + Hash + Clone, V> Drop for ClearOnDrop<'_, K, V> {
            fn drop(&mut self) {
                if self.disarm {
                    return;
                }
                let mut inner = self.cache.inner.lock().unwrap();
                if matches!(inner.map.get(self.key), Some(Slot::InFlight)) {
                    inner.map.remove(self.key);
                    inner.stats.aborts += 1;
                    drop(inner);
                    self.cache.note("abort");
                }
                self.cache.cond.notify_all();
            }
        }
        let mut guard = ClearOnDrop { cache: self, key: &key, disarm: false };
        let value = f()?;
        guard.disarm = true;
        drop(guard);

        let v = Arc::new(value);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, Slot::Ready(Arc::clone(&v), tick));
        // Respect the bound: evict least-recently-used ready entries.
        // In-flight reservations are never evicted (their computer will
        // insert shortly); the bound applies to ready entries only.
        let mut evicted = 0u64;
        while inner.map.values().filter(|s| matches!(s, Slot::Ready(..))).count() > self.cap {
            let oldest = inner
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(_, stamp) => Some((*stamp, k.clone())),
                    Slot::InFlight => None,
                })
                .min_by_key(|(stamp, _)| *stamp)
                .map(|(_, k)| k);
            match oldest {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                    evicted += 1;
                }
                None => break,
            }
        }
        drop(inner);
        for _ in 0..evicted {
            self.note("evict");
        }
        self.cond.notify_all();
        Ok((v, false))
    }
}

/// The caches an OM link server shares across requests: per-module
/// translation artifacts keyed by content hash, and whole-link outputs
/// keyed by [`link_key`](crate::hash::link_key).
pub struct OmCaches {
    /// `module_hash(m)` → [`LocalSymModule`](crate::sym::LocalSymModule).
    pub modules: Lru<crate::hash::ContentHash, crate::sym::LocalSymModule>,
    /// `link_key(...)` → finished [`OmOutput`](crate::pipeline::OmOutput).
    pub links: Lru<crate::hash::ContentHash, crate::pipeline::OmOutput>,
}

impl OmCaches {
    /// Caches bounded at `module_cap` translation artifacts and `link_cap`
    /// finished links.
    pub fn new(module_cap: usize, link_cap: usize) -> OmCaches {
        OmCaches {
            modules: Lru::named(module_cap, "modules"),
            links: Lru::named(link_cap, "links"),
        }
    }
}

impl Default for OmCaches {
    /// The defaults `shared()` uses: room for every module of a sizable CI
    /// fleet (19 workloads × dozens of modules) plus hundreds of distinct
    /// link configurations.
    fn default() -> OmCaches {
        OmCaches::new(4096, 512)
    }
}

/// The process-wide shared cache (the evaluation harness and in-process
/// link servers default to this one).
pub fn shared() -> &'static OmCaches {
    static SHARED: OnceLock<OmCaches> = OnceLock::new();
    SHARED.get_or_init(OmCaches::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let c: Lru<u32, u32> = Lru::new(8);
        let (v, hit) = c.get_or_try::<()>(1, || Ok(10)).unwrap();
        assert_eq!((*v, hit), (10, false));
        let (v, hit) = c.get_or_try::<()>(1, || unreachable!()).unwrap();
        assert_eq!((*v, hit), (10, true));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, ..Default::default() });
    }

    #[test]
    fn eviction_respects_lru_order() {
        let c: Lru<u32, u32> = Lru::new(2);
        for k in 0..3 {
            c.get_or_try::<()>(k, || Ok(k)).unwrap();
        }
        // 0 is the least recently used: evicted.
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        let (_, hit) = c.get_or_try::<()>(2, || unreachable!()).unwrap();
        assert!(hit);
        let (_, hit) = c.get_or_try::<()>(0, || Ok(0)).unwrap();
        assert!(!hit, "0 was evicted");
        // Touching 2 above made 1 the oldest; inserting 0 evicted it.
        let (_, hit) = c.get_or_try::<()>(1, || Ok(1)).unwrap();
        assert!(!hit, "1 was evicted after 2 was touched");
    }

    #[test]
    fn error_does_not_poison_the_slot() {
        let c: Lru<u32, u32> = Lru::new(8);
        let r = c.get_or_try(7, || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(c.stats().aborts, 1);
        // The slot is free again: the next lookup computes successfully.
        let (v, hit) = c.get_or_try::<()>(7, || Ok(77)).unwrap();
        assert_eq!((*v, hit), (77, false));
    }

    #[test]
    fn panic_does_not_poison_the_slot() {
        let c: Arc<Lru<u32, u32>> = Arc::new(Lru::new(8));
        let c2 = Arc::clone(&c);
        let r = std::thread::spawn(move || {
            let _ = c2.get_or_try::<()>(3, || panic!("mid-compute"));
        })
        .join();
        assert!(r.is_err(), "the compute panicked");
        assert_eq!(c.stats().aborts, 1);
        let (v, hit) = c.get_or_try::<()>(3, || Ok(30)).unwrap();
        assert_eq!((*v, hit), (30, false));
    }

    #[test]
    fn concurrent_lookups_coalesce_to_one_miss() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let c: Arc<Lru<u32, u32>> = Arc::new(Lru::new(8));
        let computed = Arc::new(AtomicU32::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                let computed = Arc::clone(&computed);
                std::thread::spawn(move || {
                    let (v, _) = c
                        .get_or_try::<()>(42, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            // Let waiters pile up on the condvar.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(420)
                        })
                        .unwrap();
                    *v
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 420);
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one compute");
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (1, 7));
    }

    #[test]
    fn waiters_retry_after_a_poisoned_compute() {
        let c: Arc<Lru<u32, u32>> = Arc::new(Lru::new(8));
        let c2 = Arc::clone(&c);
        let first = std::thread::spawn(move || {
            let _ = c2.get_or_try(9, || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Err("first fails")
            });
        });
        // Give the first thread time to reserve the slot, then pile on a
        // waiter that must NOT hang when the first compute fails.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let c3 = Arc::clone(&c);
        let second = std::thread::spawn(move || {
            let (v, _) = c3.get_or_try::<()>(9, || Ok(90)).unwrap();
            *v
        });
        first.join().unwrap();
        assert_eq!(second.join().unwrap(), 90);
        assert_eq!(c.stats().aborts, 1);
    }
}
