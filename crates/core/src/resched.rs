//! Final rescheduling: per-basic-block list scheduling after all the
//! address-calculation optimizations, plus quadword alignment of
//! backward-branch targets (§4: "Rescheduling includes quadword-aligning
//! instructions that are the targets of backward branches, which is intended
//! to improve the behavior of the AXP's dual-issue and cache").
//!
//! The input was scheduled at compile time "in the presence of a large number
//! of address loads that OM later removed"; rescheduling lets the freed
//! latency slots be reused. The paper found the payoff small — our harness
//! measures the same experiment.

use crate::fault::{FaultKind, FaultPlan};
use crate::stats::OmStats;
use crate::sym::{InstId, SInst, SMark, SymProc, SymProgram};
use om_alpha::timing::{can_dual_issue, latency};
use om_alpha::{Effects, Inst};
use std::collections::{HashMap, HashSet};

/// Reschedules every procedure and aligns backward-branch targets.
pub fn run(program: &mut SymProgram, stats: &mut OmStats) {
    run_with(program, stats, true, None);
}

/// [`run`] with the alignment pass optional (the ablation the paper itself
/// performed on `ear`: "when we scheduled it without alignment the
/// performance was improved") and an optional mutation-testing fault plan.
pub fn run_with(
    program: &mut SymProgram,
    stats: &mut OmStats,
    align: bool,
    fault: Option<&FaultPlan>,
) {
    for m in &mut program.modules {
        for p in &mut m.procs {
            schedule_proc(&mut p.insts);
            // Fault point: procedures with an adjacent truly-dependent pair
            // are the candidate sites for a dependence-violating swap.
            if let Some(k) = dependent_adjacent_pair(&p.insts) {
                if crate::fault::armed(fault, FaultKind::SchedSwap) {
                    p.insts.swap(k, k + 1);
                }
            }
        }
    }
    if align {
        align_backward_targets(program, stats);
    }
}

/// First position `k` where instruction `k+1` truly depends on `k` (reads
/// an integer register `k` writes), neither is a control transfer, and
/// `k+1` is not a branch target — the site the [`FaultKind::SchedSwap`]
/// mutation inverts.
fn dependent_adjacent_pair(insts: &[SInst]) -> Option<usize> {
    let targets: HashSet<InstId> = insts
        .iter()
        .filter_map(|i| match i.mark {
            SMark::BrLocal { target } => Some(target),
            _ => None,
        })
        .collect();
    insts.windows(2).position(|w| {
        let (a, b) = (Effects::of(&w[0].inst), Effects::of(&w[1].inst));
        !a.control
            && !b.control
            && a.int_defs & b.int_uses != 0
            && !targets.contains(&w[1].id)
            && !targets.contains(&w[0].id)
    })
}

/// Splits `insts` into basic blocks and list-schedules each block.
pub fn schedule_proc(insts: &mut Vec<SInst>) {
    // Block leaders: position 0, branch targets, and instructions after a
    // control transfer.
    let mut leaders: HashSet<usize> = HashSet::new();
    leaders.insert(0);
    let pos_of: HashMap<InstId, usize> =
        insts.iter().enumerate().map(|(k, i)| (i.id, k)).collect();
    for (k, i) in insts.iter().enumerate() {
        if i.inst.is_control() {
            leaders.insert(k + 1);
        }
        if let SMark::BrLocal { target } = i.mark {
            leaders.insert(pos_of[&target]);
        }
    }
    let mut starts: Vec<usize> = leaders.into_iter().filter(|&k| k < insts.len()).collect();
    starts.sort_unstable();

    // The entry GPDISP pair is pinned: OM-full restored it to the procedure
    // entry precisely so call sites can skip it (BSR to entry+8), and some
    // already do — rescheduling must not sink it again.
    let pinned = match (insts.first(), insts.get(1)) {
        (Some(first), Some(second)) => match first.mark {
            crate::sym::SMark::GpdispHi { lo, anchor: crate::sym::SAnchor::Entry }
                if second.id == lo =>
            {
                2
            }
            _ => 0,
        },
        _ => 0,
    };

    // Branch-target instructions must stay at their block heads: a branch
    // jumps to a specific instruction id, and anything the scheduler hoisted
    // above it would be skipped on the branch path.
    let targets: HashSet<InstId> = insts
        .iter()
        .filter_map(|i| match i.mark {
            SMark::BrLocal { target } => Some(target),
            _ => None,
        })
        .collect();

    let mut out: Vec<SInst> = insts[..pinned.min(insts.len())].to_vec();
    for (bi, &s) in starts.iter().enumerate() {
        let e = starts.get(bi + 1).copied().unwrap_or(insts.len());
        if e <= pinned {
            continue;
        }
        let mut s = s.max(pinned);
        // Pin the leader while it is a branch target.
        while s < e && targets.contains(&insts[s].id) {
            out.push(insts[s].clone());
            s += 1;
        }
        let mut block: Vec<SInst> = insts[s..e].to_vec();
        schedule_block(&mut block);
        out.extend(block);
    }
    *insts = out;
}

/// Latency-driven list scheduling of one block (same policy as the
/// compile-time scheduler, but over post-OM code).
fn schedule_block(block: &mut Vec<SInst>) {
    let n = block.len();
    if n < 2 {
        return;
    }
    let effects: Vec<Effects> = block.iter().map(|i| Effects::of(&i.inst)).collect();

    // Extra ordering constraints beyond register/memory dependences: a
    // GPDISP pair must keep its internal order (already enforced by the GP
    // register dependence) and LITUSE consumers follow their load (enforced
    // by the load's destination register). So plain Effects suffice.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut npreds: Vec<usize> = vec![0; n];
    for j in 0..n {
        for i in 0..j {
            if effects[j].depends_on(&effects[i]) {
                succs[i].push(j);
                npreds[j] += 1;
            }
        }
    }
    let mut prio: Vec<u32> = vec![0; n];
    for i in (0..n).rev() {
        let tail = succs[i].iter().map(|&j| prio[j]).max().unwrap_or(0);
        prio[i] = latency(&block[i].inst) + tail;
    }
    let fanout: Vec<usize> = succs.iter().map(Vec::len).collect();

    let mut ready: Vec<usize> = (0..n).filter(|&i| npreds[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = npreds;
    while let Some(&first) = ready.first() {
        let mut best = first;
        for &c in &ready {
            let key = |i: usize| {
                let pairs = order
                    .last()
                    .map(|&p| can_dual_issue(&block[p].inst, &block[i].inst))
                    .unwrap_or(false);
                (prio[i], fanout[i], pairs as u32, std::cmp::Reverse(i))
            };
            if key(c) > key(best) {
                best = c;
            }
        }
        ready.retain(|&i| i != best);
        order.push(best);
        for &j in &succs[best] {
            remaining[j] -= 1;
            if remaining[j] == 0 {
                ready.push(j);
            }
        }
    }

    let old = std::mem::take(block);
    let mut slots: Vec<Option<SInst>> = old.into_iter().map(Some).collect();
    *block = order
        .into_iter()
        .map(|i| slots[i].take().expect("scheduled twice"))
        .collect();
}

/// The distinct backward-branch targets of `p` (target position ≤ branch
/// position), in target code order. The index of a target in this list is
/// its *rank* — the key the profile format uses to match targets across
/// relinks (scheduling is deterministic and padding never adds targets, so
/// ranks are stable where instruction ids and addresses are not).
pub fn backward_target_ids(p: &SymProc) -> Vec<InstId> {
    let pos_of: HashMap<InstId, usize> =
        p.insts.iter().enumerate().map(|(k, i)| (i.id, k)).collect();
    let mut positions: Vec<usize> = p
        .insts
        .iter()
        .enumerate()
        .filter_map(|(k, i)| match i.mark {
            SMark::BrLocal { target } if pos_of[&target] <= k => Some(pos_of[&target]),
            _ => None,
        })
        .collect();
    positions.sort_unstable();
    positions.dedup();
    positions.into_iter().map(|k| p.insts[k].id).collect()
}

/// Inserts UNOPs so that every backward-branch target lands on an 8-byte
/// boundary in the final image (procedure start offsets are 16-aligned at
/// layout time, so intra-module offsets determine alignment).
fn align_backward_targets(program: &mut SymProgram, stats: &mut OmStats) {
    align_backward_targets_where(program, stats, |_, _, _| true);
}

/// [`align_backward_targets`] restricted to the targets `keep` selects by
/// `(module index, proc index, target rank)` — the profile-guided layout
/// pass aligns only *hot* targets through this hook.
pub fn align_backward_targets_where(
    program: &mut SymProgram,
    stats: &mut OmStats,
    mut keep: impl FnMut(usize, usize, usize) -> bool,
) {
    for (mi, m) in program.modules.iter_mut().enumerate() {
        // Offset of each proc start within the module, updated as UNOPs are
        // inserted (procedures are laid out back to back).
        let mut base = 0u64;
        for (pi, p) in m.procs.iter_mut().enumerate() {
            let rank_of: HashMap<InstId, usize> = backward_target_ids(p)
                .into_iter()
                .enumerate()
                .map(|(rank, id)| (id, rank))
                .collect();

            // Walk front to back, padding before each selected target until
            // its offset is quadword-aligned. Padding shifts later targets,
            // so process in position order.
            let mut k = 0;
            while k < p.insts.len() {
                let id = p.insts[k].id;
                let wanted = rank_of.get(&id).is_some_and(|&rank| keep(mi, pi, rank));
                if wanted && !(base + 4 * k as u64).is_multiple_of(8) {
                    let fresh = p.fresh_id();
                    p.insts.insert(k, SInst { id: fresh, inst: Inst::unop(), mark: SMark::None });
                    stats.unops_inserted += 1;
                    k += 1; // the target moved one slot later and is now aligned
                }
                k += 1;
            }
            base += 4 * p.insts.len() as u64;
        }
    }
}
