//! Profile-guided layout: the BOLT-style refinement of the paper's blind
//! layout heuristics, driven by a [`Profile`] collected on a previous run.
//!
//! Two decisions become profile-driven:
//!
//! * **Hot/cold procedure ordering** — within each module, procedures are
//!   stably reordered by descending call count, so hot procedures pack
//!   together at the front of the module's text (better I-cache locality on
//!   the 8KB direct-mapped model). Cold procedures keep their relative
//!   input order, and entirely-cold modules are left untouched.
//! * **Hot-only backward-branch-target alignment** — the paper aligns every
//!   backward-branch target; its own `ear` ablation showed that can hurt.
//!   Here only targets whose profiled execution count reaches
//!   [`crate::pipeline::OmOptions::pgo_hot_min`] earn alignment UNOPs; cold
//!   targets (loop heads that never ran hot) cost nothing on the fall-through
//!   path.
//!
//! Profile↔program matching is by linked-image symbol name (exported
//! procedures by plain name, locals qualified `"name.module"`, exactly as
//! the linker publishes them) and by backward-target *rank* (code order).
//! A procedure the profile does not know — or whose target count disagrees,
//! meaning the code changed since profiling — conservatively falls back to
//! the paper's align-everything behavior for that procedure.

use crate::pipeline::OmOptions;
use crate::profile::Profile;
use crate::resched::{align_backward_targets_where, backward_target_ids};
use crate::stats::OmStats;
use crate::sym::{SInst, SMark, SymProc, SymProgram};
use om_alpha::Inst;
use om_objfile::Visibility;

/// The linked-image symbol name of a procedure (the key [`Profile`] entries
/// use): the plain name when exported, `"name.module"` when local —
/// mirroring the linker's published symbol map.
pub fn proc_key(name: &str, vis: Visibility, module_name: &str) -> String {
    match vis {
        Visibility::Exported => name.to_string(),
        Visibility::Local => format!("{name}.{module_name}"),
    }
}

/// Applies profile-guided layout to a scheduled program: procedure
/// reordering first (so alignment sees final intra-module offsets), then
/// hot-only target alignment.
pub fn run_with(
    program: &mut SymProgram,
    stats: &mut OmStats,
    profile: &Profile,
    options: &OmOptions,
) {
    // 1. Hot/cold procedure reordering, stable within each module.
    for m in &mut program.modules {
        let module_name = m.source.name.clone();
        let heat: Vec<u64> = m
            .procs
            .iter()
            .map(|p| {
                profile
                    .proc(&proc_key(&p.name, p.vis, &module_name))
                    .map_or(0, |pp| pp.calls)
            })
            .collect();
        let mut order: Vec<usize> = (0..m.procs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(heat[i]));
        if order.iter().enumerate().any(|(slot, &i)| slot != i) {
            stats.pgo_procs_moved +=
                order.iter().enumerate().filter(|&(slot, &i)| slot != i).count();
            let mut procs: Vec<Option<SymProc>> =
                std::mem::take(&mut m.procs).into_iter().map(Some).collect();
            m.procs =
                order.iter().map(|&i| procs[i].take().expect("proc moved twice")).collect();
        }
    }

    // 2. Hot-only alignment. Decide per (module, proc, rank) up front; the
    // alignment walk then just consults the table.
    let mut hot: Vec<Vec<Vec<bool>>> = Vec::with_capacity(program.modules.len());
    for m in &program.modules {
        let module_name = &m.source.name;
        let mut per_proc = Vec::with_capacity(m.procs.len());
        for p in &m.procs {
            let n_targets = backward_target_ids(p).len();
            let decisions = match profile.proc(&proc_key(&p.name, p.vis, module_name)) {
                Some(pp) if pp.back_targets.len() == n_targets => pp
                    .back_targets
                    .iter()
                    .map(|&c| c >= options.pgo_hot_min)
                    .collect(),
                // Unknown procedure or a target-count mismatch: the paper's
                // blind alignment is the safe default.
                _ => vec![true; n_targets],
            };
            stats.pgo_targets_hot += decisions.iter().filter(|&&h| h).count();
            stats.pgo_targets_cold += decisions.iter().filter(|&&h| !h).count();
            per_proc.push(decisions);
        }
        hot.push(per_proc);
    }
    align_backward_targets_where(program, stats, |mi, pi, rank| hot[mi][pi][rank]);

    // Fault point: pad the entry of a procedure that prologue-skipping
    // `BSR +8` callers enter at a fixed offset — they now land mid-pair.
    // The UNOP is counted like any alignment UNOP, so the accounting stays
    // balanced and only execution can notice.
    if let Some(plan) = options.fault.as_ref() {
        let mut skip_targets: Vec<(usize, usize)> = Vec::new();
        for m in &program.modules {
            for p in &m.procs {
                for i in &p.insts {
                    if let SMark::BrSym { target, addend: 8 } = &i.mark {
                        if let Some(coord) = program.proc_of(target) {
                            if !skip_targets.contains(&coord) {
                                skip_targets.push(coord);
                            }
                        }
                    }
                }
            }
        }
        skip_targets.sort_unstable();
        for (mi, pi) in skip_targets {
            if plan.arm(crate::fault::FaultKind::EntryPad) {
                let p = &mut program.modules[mi].procs[pi];
                let id = p.fresh_id();
                p.insts.insert(0, SInst { id, inst: Inst::unop(), mark: SMark::None });
                stats.unops_inserted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProcProfile;

    fn profile_with(procs: Vec<ProcProfile>) -> Profile {
        let mut p = Profile { total_insts: 0, procs, edges: Vec::new() };
        p.normalize();
        p
    }

    #[test]
    fn proc_key_qualifies_locals_like_the_linker() {
        assert_eq!(proc_key("f", Visibility::Exported, "m"), "f");
        assert_eq!(proc_key("f", Visibility::Local, "m"), "f.m");
    }

    #[test]
    fn hot_threshold_splits_targets() {
        let prof = profile_with(vec![ProcProfile {
            name: "f".into(),
            calls: 10,
            insts: 100,
            back_targets: vec![0, 5, 1],
        }]);
        let pp = prof.proc("f").unwrap();
        let hot: Vec<bool> = pp.back_targets.iter().map(|&c| c >= 2).collect();
        assert_eq!(hot, vec![false, true, false]);
    }
}
