//! Transformation statistics — the raw material of the paper's Figures 3–5
//! and the GAT-reduction numbers in §5.1.

/// Counters collected while OM transforms a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OmStats {
    /// Instructions in the program before optimization.
    pub insts_before: usize,
    /// Instructions changed to no-ops (OM-simple never deletes).
    pub insts_nullified: usize,
    /// Instructions deleted outright (OM-full).
    pub insts_deleted: usize,
    /// No-ops inserted by the rescheduler for quadword alignment.
    pub unops_inserted: usize,

    /// GAT address loads in the input (Figure 3 denominator).
    pub addr_loads_total: usize,
    /// Address loads converted to LDA/LDAH load-address operations.
    pub addr_loads_converted: usize,
    /// Address loads nullified (to no-ops) or deleted.
    pub addr_loads_nullified: usize,

    /// Call sites in the input: direct JSR, compiler-emitted BSR, and calls
    /// through procedure variables (Figure 4 denominator).
    pub calls_total: usize,
    /// Calls through procedure variables (their PV use can never be removed).
    pub calls_indirect: usize,
    /// JSRs rewritten into BSRs.
    pub calls_jsr_to_bsr: usize,
    /// Call sites with a PV address load before / after optimization.
    pub calls_pv_before: usize,
    pub calls_pv_after: usize,
    /// Call sites with a GP-reset pair before / after optimization.
    pub calls_gp_reset_before: usize,
    pub calls_gp_reset_after: usize,

    /// Merged GAT slots before and after optimization.
    pub gat_slots_before: usize,
    pub gat_slots_after: usize,

    /// Procedures placed at a new intra-module position by profile-guided
    /// hot/cold reordering.
    pub pgo_procs_moved: usize,
    /// Backward-branch targets the profile marked hot (alignment-eligible);
    /// includes the blind-alignment fallback for unprofiled procedures.
    pub pgo_targets_hot: usize,
    /// Backward-branch targets left unaligned as cold.
    pub pgo_targets_cold: usize,
}

impl OmStats {
    /// Fraction of address loads removed, split `(converted, nullified)`
    /// (Figure 3's dark and light bar segments).
    pub fn addr_load_fractions(&self) -> (f64, f64) {
        if self.addr_loads_total == 0 {
            return (0.0, 0.0);
        }
        let t = self.addr_loads_total as f64;
        (
            self.addr_loads_converted as f64 / t,
            self.addr_loads_nullified as f64 / t,
        )
    }

    /// Fraction of calls still requiring a PV load (Figure 4, top).
    pub fn pv_fraction_after(&self) -> f64 {
        if self.calls_total == 0 {
            return 0.0;
        }
        self.calls_pv_after as f64 / self.calls_total as f64
    }

    /// Fraction of calls still requiring GP-reset code (Figure 4, bottom).
    pub fn gp_reset_fraction_after(&self) -> f64 {
        if self.calls_total == 0 {
            return 0.0;
        }
        self.calls_gp_reset_after as f64 / self.calls_total as f64
    }

    /// Fraction of instructions nullified or deleted (Figure 5).
    pub fn inst_fraction_removed(&self) -> f64 {
        if self.insts_before == 0 {
            return 0.0;
        }
        (self.insts_nullified + self.insts_deleted) as f64 / self.insts_before as f64
    }

    /// GAT size after optimization relative to before (§5.1: 3%–15%).
    pub fn gat_ratio(&self) -> f64 {
        if self.gat_slots_before == 0 {
            return 1.0;
        }
        self.gat_slots_after as f64 / self.gat_slots_before as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero_denominators() {
        let s = OmStats::default();
        assert_eq!(s.addr_load_fractions(), (0.0, 0.0));
        assert_eq!(s.pv_fraction_after(), 0.0);
        assert_eq!(s.inst_fraction_removed(), 0.0);
        assert_eq!(s.gat_ratio(), 1.0);
    }

    #[test]
    fn fractions_compute() {
        let s = OmStats {
            insts_before: 200,
            insts_nullified: 10,
            insts_deleted: 12,
            addr_loads_total: 40,
            addr_loads_converted: 10,
            addr_loads_nullified: 25,
            calls_total: 10,
            calls_pv_after: 3,
            calls_gp_reset_after: 1,
            gat_slots_before: 100,
            gat_slots_after: 9,
            ..OmStats::default()
        };
        assert_eq!(s.addr_load_fractions(), (0.25, 0.625));
        assert_eq!(s.inst_fraction_removed(), 0.11);
        assert_eq!(s.pv_fraction_after(), 0.3);
        assert_eq!(s.gp_reset_fraction_after(), 0.1);
        assert!((s.gat_ratio() - 0.09).abs() < 1e-12);
    }
}
