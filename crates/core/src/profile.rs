//! Execution profiles: the serialized form of what `om-sim`'s
//! `ProfileObserver` measures, and what the profile-guided layout pass
//! ([`crate::pgo`]) consumes.
//!
//! The paper's OM applies its layout heuristics blindly — every
//! backward-branch target is quadword-aligned, procedures stay in input
//! order. BOLT-style post-link optimizers showed the same machinery pays off
//! more when driven by an execution profile. A [`Profile`] carries exactly
//! the counts that layer needs:
//!
//! * per-procedure entry counts (call frequency → hot/cold ordering),
//! * per-procedure retired-instruction counts (observability),
//! * execution counts of each backward-branch target, *by rank* — the
//!   target's index among the procedure's distinct backward-branch targets
//!   in code order. Ranks survive relinking: OM's scheduling is
//!   deterministic and alignment padding never adds or reorders targets, so
//!   rank `k` in the profiled image is rank `k` in the rebuild.
//! * call edges (caller → callee counts), for diagnostics and tooling.
//!
//! The on-disk format is line-oriented JSON, hand-rolled like the rest of
//! the workspace (the build is offline; no serde). Serialization is
//! deterministic: procedures sort by name, edges by (caller, callee).

use std::fmt;

/// Per-procedure execution counts. The `name` is the procedure's linked-image
/// symbol: the plain name for exported procedures, `"name.module"` for
/// locals — the same qualification the linker's symbol table uses, so
/// image-side attribution and symbolic-side lookup agree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcProfile {
    pub name: String,
    /// Times the procedure was entered by a call (BSR/JSR).
    pub calls: u64,
    /// Instructions retired inside the procedure.
    pub insts: u64,
    /// Execution count of each distinct backward-branch target, indexed by
    /// rank (code order). Length = number of targets the procedure *has*,
    /// not just those that ran; unexecuted targets count 0.
    pub back_targets: Vec<u64>,
}

/// One call edge: `caller` transferred to `callee` `count` times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallEdge {
    pub caller: String,
    pub callee: String,
    pub count: u64,
}

/// A whole-program execution profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Total instructions retired by the profiled run.
    pub total_insts: u64,
    /// Per-procedure counts, sorted by name (see [`Profile::normalize`]).
    pub procs: Vec<ProcProfile>,
    /// Call edges, sorted by (caller, callee).
    pub edges: Vec<CallEdge>,
}

/// Errors from [`Profile::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError(pub String);

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile: {}", self.0)
    }
}

impl std::error::Error for ProfileError {}

impl Profile {
    /// Sorts procedures by name and edges by (caller, callee), making the
    /// serialized form canonical. Lookup ([`Profile::proc`]) requires it.
    pub fn normalize(&mut self) {
        self.procs.sort_by(|a, b| a.name.cmp(&b.name));
        self.edges
            .sort_by(|a, b| (&a.caller, &a.callee).cmp(&(&b.caller, &b.callee)));
    }

    /// Looks up a procedure by its linked-image symbol name (binary search;
    /// the profile must be normalized, which both the observer and the
    /// parser guarantee).
    pub fn proc(&self, name: &str) -> Option<&ProcProfile> {
        self.procs
            .binary_search_by(|p| p.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.procs[i])
    }

    /// Serializes to the line-oriented JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"om-profile/v1\",\n");
        out.push_str(&format!("  \"total_insts\": {},\n", self.total_insts));
        out.push_str("  \"procs\": [\n");
        for (i, p) in self.procs.iter().enumerate() {
            let counts: Vec<String> = p.back_targets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "    {{\"name\":{},\"calls\":{},\"insts\":{},\"back_targets\":[{}]}}{}\n",
                escape(&p.name),
                p.calls,
                p.insts,
                counts.join(","),
                if i + 1 < self.procs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"caller\":{},\"callee\":{},\"count\":{}}}{}\n",
                escape(&e.caller),
                escape(&e.callee),
                e.count,
                if i + 1 < self.edges.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON format (key order does not matter; unknown keys are
    /// ignored for forward compatibility).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] on malformed JSON, a wrong schema tag, or
    /// missing required keys.
    pub fn from_json(s: &str) -> Result<Profile, ProfileError> {
        let top = parse_value(&mut Cursor::new(s))?.into_obj("top level")?;
        match top.get("schema") {
            Some(Val::Str(tag)) if tag == "om-profile/v1" => {}
            Some(Val::Str(tag)) => {
                return Err(ProfileError(format!("unsupported schema {tag:?}")))
            }
            _ => return Err(ProfileError("missing schema tag".into())),
        }
        let mut profile = Profile {
            total_insts: top.req_num("total_insts")?,
            procs: Vec::new(),
            edges: Vec::new(),
        };
        for v in top.req_arr("procs")? {
            let o = v.into_obj("proc entry")?;
            let mut back_targets = Vec::new();
            for c in o.req_arr("back_targets")? {
                back_targets.push(c.into_num("back_targets element")?);
            }
            profile.procs.push(ProcProfile {
                name: o.req_str("name")?,
                calls: o.req_num("calls")?,
                insts: o.req_num("insts")?,
                back_targets,
            });
        }
        for v in top.req_arr("edges")? {
            let o = v.into_obj("edge entry")?;
            profile.edges.push(CallEdge {
                caller: o.req_str("caller")?,
                callee: o.req_str("callee")?,
                count: o.req_num("count")?,
            });
        }
        profile.normalize();
        Ok(profile)
    }
}

/// JSON string escaping for names (control characters, quote, backslash).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value model: only what the profile format uses.
#[derive(Debug, Clone)]
enum Val {
    Str(String),
    Num(u64),
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

impl Val {
    fn into_obj(self, what: &str) -> Result<Obj, ProfileError> {
        match self {
            Val::Obj(pairs) => Ok(Obj(pairs)),
            _ => Err(ProfileError(format!("{what}: expected an object"))),
        }
    }

    fn into_num(self, what: &str) -> Result<u64, ProfileError> {
        match self {
            Val::Num(n) => Ok(n),
            _ => Err(ProfileError(format!("{what}: expected a number"))),
        }
    }
}

/// An object with by-key access (linear scan; objects here are tiny).
struct Obj(Vec<(String, Val)>);

impl Obj {
    fn get(&self, key: &str) -> Option<&Val> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn take(&self, key: &str) -> Result<Val, ProfileError> {
        self.get(key)
            .cloned()
            .ok_or_else(|| ProfileError(format!("missing key {key:?}")))
    }

    fn req_num(&self, key: &str) -> Result<u64, ProfileError> {
        self.take(key)?.into_num(key)
    }

    fn req_str(&self, key: &str) -> Result<String, ProfileError> {
        match self.take(key)? {
            Val::Str(s) => Ok(s),
            _ => Err(ProfileError(format!("{key}: expected a string"))),
        }
    }

    fn req_arr(&self, key: &str) -> Result<Vec<Val>, ProfileError> {
        match self.take(key)? {
            Val::Arr(v) => Ok(v),
            _ => Err(ProfileError(format!("{key}: expected an array"))),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, ProfileError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| ProfileError("unexpected end of input".into()))
    }

    fn expect(&mut self, c: u8) -> Result<(), ProfileError> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(ProfileError(format!(
                "expected {:?} at byte {}",
                c as char, self.pos
            )))
        }
    }
}

fn parse_value(c: &mut Cursor) -> Result<Val, ProfileError> {
    match c.peek()? {
        b'"' => parse_string(c).map(Val::Str),
        b'{' => {
            c.pos += 1;
            let mut pairs = Vec::new();
            if c.peek()? == b'}' {
                c.pos += 1;
                return Ok(Val::Obj(pairs));
            }
            loop {
                let key = parse_string(c)?;
                c.expect(b':')?;
                pairs.push((key, parse_value(c)?));
                match c.peek()? {
                    b',' => c.pos += 1,
                    b'}' => {
                        c.pos += 1;
                        return Ok(Val::Obj(pairs));
                    }
                    other => {
                        return Err(ProfileError(format!(
                            "expected ',' or '}}', found {:?}",
                            other as char
                        )))
                    }
                }
            }
        }
        b'[' => {
            c.pos += 1;
            let mut items = Vec::new();
            if c.peek()? == b']' {
                c.pos += 1;
                return Ok(Val::Arr(items));
            }
            loop {
                items.push(parse_value(c)?);
                match c.peek()? {
                    b',' => c.pos += 1,
                    b']' => {
                        c.pos += 1;
                        return Ok(Val::Arr(items));
                    }
                    other => {
                        return Err(ProfileError(format!(
                            "expected ',' or ']', found {:?}",
                            other as char
                        )))
                    }
                }
            }
        }
        b'0'..=b'9' => parse_number(c).map(Val::Num),
        other => Err(ProfileError(format!(
            "unexpected {:?} at byte {}",
            other as char, c.pos
        ))),
    }
}

fn parse_number(c: &mut Cursor) -> Result<u64, ProfileError> {
    let start = c.pos;
    while c.pos < c.bytes.len() && c.bytes[c.pos].is_ascii_digit() {
        c.pos += 1;
    }
    let digits = std::str::from_utf8(&c.bytes[start..c.pos]).expect("ascii digits");
    digits
        .parse::<u64>()
        .map_err(|_| ProfileError(format!("number out of range: {digits}")))
}

fn parse_string(c: &mut Cursor) -> Result<String, ProfileError> {
    c.expect(b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = c.bytes.get(c.pos) else {
            return Err(ProfileError("unterminated string".into()));
        };
        c.pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = c.bytes.get(c.pos) else {
                    return Err(ProfileError("unterminated escape".into()));
                };
                c.pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = c
                            .bytes
                            .get(c.pos..c.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| ProfileError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ProfileError(format!("bad \\u escape {hex:?}")))?;
                        c.pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| ProfileError(format!("bad code point {code:#x}")))?,
                        );
                    }
                    other => {
                        return Err(ProfileError(format!("bad escape \\{}", other as char)))
                    }
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at the byte we took
                // (shortest valid prefix = exactly one character).
                let s = &c.bytes[c.pos - 1..];
                let ch = (1..=4.min(s.len()))
                    .find_map(|n| std::str::from_utf8(&s[..n]).ok())
                    .and_then(|t| t.chars().next())
                    .ok_or_else(|| ProfileError("invalid UTF-8 in string".into()))?;
                c.pos += ch.len_utf8() - 1;
                out.push(ch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut p = Profile {
            total_insts: 1234,
            procs: vec![
                ProcProfile {
                    name: "main".into(),
                    calls: 1,
                    insts: 500,
                    back_targets: vec![12, 0, u64::MAX],
                },
                ProcProfile {
                    name: "helper.mod_a".into(),
                    calls: 40,
                    insts: 734,
                    back_targets: vec![],
                },
            ],
            edges: vec![CallEdge { caller: "main".into(), callee: "helper.mod_a".into(), count: 40 }],
        };
        p.normalize();
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        let q = Profile::from_json(&p.to_json()).expect("roundtrip");
        assert_eq!(p, q);
    }

    #[test]
    fn lookup_finds_procs_by_name() {
        let p = sample();
        assert_eq!(p.proc("main").unwrap().insts, 500);
        assert_eq!(p.proc("helper.mod_a").unwrap().calls, 40);
        assert!(p.proc("absent").is_none());
    }

    #[test]
    fn parser_ignores_key_order_and_unknown_keys() {
        let s = r#"{"total_insts": 7, "schema": "om-profile/v1", "future": [1,2],
                    "edges": [], "procs": [{"back_targets":[1],"insts":7,"calls":2,"name":"f","x":0}]}"#;
        let p = Profile::from_json(s).expect("parse");
        assert_eq!(p.total_insts, 7);
        assert_eq!(p.procs[0].name, "f");
        assert_eq!(p.procs[0].back_targets, vec![1]);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Profile::from_json("").is_err());
        assert!(Profile::from_json("{}").is_err());
        assert!(Profile::from_json("{\"schema\":\"om-profile/v2\"}").is_err());
        // Overflow past u64::MAX is an error, not a wrap.
        let s = "{\"schema\":\"om-profile/v1\",\"total_insts\":99999999999999999999,\"procs\":[],\"edges\":[]}";
        assert!(Profile::from_json(s).is_err());
        // Truncated input.
        let good = sample().to_json();
        assert!(Profile::from_json(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn escaped_names_roundtrip() {
        let mut p = Profile::default();
        p.procs.push(ProcProfile {
            name: "we\"ird\\name\n.mod".into(),
            calls: 3,
            insts: 9,
            back_targets: vec![0],
        });
        p.normalize();
        let q = Profile::from_json(&p.to_json()).expect("roundtrip");
        assert_eq!(p, q);
    }
}
