//! OM: the link-time address-calculation optimizer of Srivastava & Wall,
//! *Link-Time Optimization of Address Calculation on a 64-bit Architecture*
//! (PLDI 1994) — the primary contribution this workspace reproduces.
//!
//! OM is an optimizing linker: it takes the entire statically-linked program
//! (user objects plus pre-compiled library members), translates the object
//! code into a symbolic form, improves the conservative global-address
//! calculation the compilers had to emit, and links the result:
//!
//! * **OM-simple** ([`OmLevel::Simple`]) — what a traditional linker could
//!   do: in-place conversion of GAT address loads to LDA/LDAH, nullification
//!   to no-ops, JSR→BSR, GP-reset removal, commons sorted next to the GAT.
//! * **OM-full** ([`OmLevel::Full`]) — moves and deletes code: prologue GP
//!   setup restored to procedure entries and removed when every call is a
//!   same-GAT BSR, PV loads deleted, the GAT reduced to a fixpoint.
//! * **OM-full w/sched** ([`OmLevel::FullSched`]) — adds final per-block
//!   rescheduling and quadword alignment of backward-branch targets.
//!
//! # Example
//!
//! ```
//! use om_codegen::{compile_source, crt0, CompileOpts};
//! use om_core::{optimize_and_link, OmLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let obj = compile_source(
//!     "m",
//!     "int hits; int main() { int i = 0;
//!        for (i = 0; i < 10; i = i + 1) { hits = hits + i; }
//!        return hits; }",
//!     &CompileOpts::o2(),
//! )?;
//! let out = optimize_and_link(&[crt0::module()?, obj], &[], OmLevel::Full)?;
//! assert!(out.stats.addr_loads_nullified > 0);
//! assert_eq!(om_sim::run_image(&out.image, 100_000)?.result, 45);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod cache;
pub mod fault;
pub mod full;
pub mod hash;
pub mod obs;
pub mod pgo;
pub mod pipeline;
pub mod profile;
pub mod resched;
pub mod simple;
pub mod stats;
pub mod sym;
pub mod verify;

pub use cache::{CacheStats, Lru, OmCaches};
pub use fault::{FaultKind, FaultPlan};
pub use hash::{archive_hash, link_key, module_hash, options_fingerprint, ContentHash};
pub use pipeline::{
    optimize_and_link, optimize_and_link_artifacts, optimize_and_link_cached,
    optimize_and_link_keyed, optimize_and_link_with, pipeline_runs, CallBook, Emitted, OmLevel,
    OmOptions, OmOutput,
};
pub use profile::{CallEdge, ProcProfile, Profile, ProfileError};
pub use stats::OmStats;
pub use sym::{GlobalRef, OmError, SymProgram};
pub use verify::VerifyReport;
