//! The 32-bit GP-relative conversion path: an initialized array lives in
//! `.data`, beyond the 16-bit GP window, and is accessed with constant
//! indices (rewritable uses). OM-simple must convert the address load to an
//! LDAH high half with the use absorbing the low half — "the LDAH
//! instruction lets us make a direct GP-relative reference in the same
//! number of instructions as an indirect reference via the GAT" — and the
//! linker must patch the GPRELHIGH/GPRELLOW pair correctly.

use om_alpha::{Inst, MemOp, Reg};
use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::{optimize_and_link, OmLevel};
use om_sim::run_image;

const SRC: &str = "
    int pad_commons[16384];   // 128KB of commons push .data past the GP window
    int table[64] = { 11, 22, 33, 44, 55, 66, 77, 88 };
    int main() {
      pad_commons[5] = 1;
      table[3] = table[0] + table[1];
      return table[3] * 100 + table[2] + pad_commons[5] - 1;
    }";

fn objects() -> Vec<om_objfile::Module> {
    vec![
        crt0::module().unwrap(),
        compile_source("m", SRC, &CompileOpts::o2()).unwrap(),
    ]
}

#[test]
fn constant_index_data_accesses_convert_to_ldah_pairs() {
    let out = optimize_and_link(&objects(), &[],OmLevel::Simple).unwrap();
    assert!(
        out.stats.addr_loads_converted > 0,
        "far .data with rewritable uses must be converted: {:?}",
        out.stats
    );
    // The converted loads appear as `ldah rx, hi(gp)` in the final text
    // (inter-module padding words don't decode; skip them).
    let text = &out.image.segments[0];
    let found = text.bytes.chunks_exact(4).any(|w| {
        matches!(
            om_alpha::decode(u32::from_le_bytes(w.try_into().unwrap())),
            Ok(Inst::Mem { op: MemOp::Ldah, rb, .. }) if rb == Reg::GP
        )
    });
    assert!(found, "an LDAH off GP must exist after conversion");
    // And the program still computes the right value: 3300 + 33... wait:
    // table[3] = 11 + 22 = 33; result = 33*100 + 33 = 3333.
    let r = run_image(&out.image, 100_000).unwrap();
    assert_eq!(r.result, 3333);
}

#[test]
fn all_levels_agree_on_far_data() {
    let baseline = run_image(
        &optimize_and_link(&objects(), &[],OmLevel::None).unwrap().image,
        100_000,
    )
    .unwrap()
    .result;
    assert_eq!(baseline, 3333);
    for level in [OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
        let out = optimize_and_link(&objects(), &[],level).unwrap();
        let r = run_image(&out.image, 100_000).unwrap();
        assert_eq!(r.result, baseline, "{}", level.name());
    }
}

#[test]
fn mixed_near_and_far_objects_split_between_paths() {
    // A small scalar (nullified, 16-bit) and a far array (converted, 32-bit)
    // in one function.
    let src = "
        int pad_commons[16384];
        int near_g = 5;
        int far_a[32] = { 1, 2, 3, 4 };
        int main() { pad_commons[9] = near_g; return pad_commons[9] + far_a[1] * 10; }";
    let objects = vec![
        crt0::module().unwrap(),
        compile_source("m", src, &CompileOpts::o2()).unwrap(),
    ];
    let out = optimize_and_link(&objects, &[], OmLevel::Simple).unwrap();
    assert!(out.stats.addr_loads_nullified > 0, "{:?}", out.stats);
    assert!(out.stats.addr_loads_converted > 0, "{:?}", out.stats);
    assert_eq!(run_image(&out.image, 100_000).unwrap().result, 25);
}
