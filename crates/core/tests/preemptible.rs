//! Shared-library semantics (§6): symbols that dynamic linking may preempt
//! must keep fully conservative code — the compiler couldn't know, and OM,
//! told which symbols are dynamic, must not touch them.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::{optimize_and_link, optimize_and_link_with, OmLevel, OmOptions};
use om_objfile::Module;
use om_sim::run_image;

fn objects() -> Vec<Module> {
    let opts = CompileOpts::o2();
    vec![
        crt0::module().unwrap(),
        compile_source(
            "main",
            "extern int plugin(int); extern int local_fn(int);
             int shared_counter;
             int main() {
               int i = 0;
               for (i = 0; i < 6; i = i + 1) {
                 shared_counter = shared_counter + plugin(i) + local_fn(i);
               }
               return shared_counter;
             }",
            &opts,
        )
        .unwrap(),
        compile_source(
            "libplugin",
            "int plugin(int x) { return x * 3 + 1; }
             int local_fn(int x) { return x ^ 5; }",
            &opts,
        )
        .unwrap(),
    ]
}

fn preempt(names: &[&str]) -> OmOptions {
    OmOptions {
        preemptible: names.iter().map(|s| s.to_string()).collect(),
        ..OmOptions::default()
    }
}

#[test]
fn preemptible_calls_keep_their_bookkeeping() {
    let baseline = optimize_and_link(&objects(), &[],OmLevel::Full).unwrap();
    // Without preemption every direct call loses PV load and GP reset.
    assert_eq!(baseline.stats.calls_pv_after, 0);

    let guarded =
        optimize_and_link_with(&objects(), &[],OmLevel::Full, &preempt(&["plugin"])).unwrap();
    // The calls to `plugin` (one per loop body — statically one site) keep
    // their PV load and GP reset; `local_fn`'s sites are still optimized.
    assert!(guarded.stats.calls_pv_after > 0, "{:?}", guarded.stats);
    assert!(guarded.stats.calls_gp_reset_after > 0, "{:?}", guarded.stats);
    assert!(
        guarded.stats.calls_pv_after < guarded.stats.calls_pv_before,
        "non-preemptible calls must still be optimized: {:?}",
        guarded.stats
    );
    assert!(guarded.stats.calls_jsr_to_bsr < baseline.stats.calls_jsr_to_bsr);
}

#[test]
fn preemptible_data_keeps_its_gat_slot() {
    let baseline = optimize_and_link(&objects(), &[],OmLevel::Full).unwrap();
    let guarded = optimize_and_link_with(
        &objects(),
        &[],
        OmLevel::Full,
        &preempt(&["shared_counter"]),
    )
    .unwrap();
    assert!(
        guarded.stats.gat_slots_after > baseline.stats.gat_slots_after,
        "the preemptible object's slot must survive: {:?} vs {:?}",
        guarded.stats,
        baseline.stats
    );
    assert!(
        guarded.stats.addr_loads_nullified < baseline.stats.addr_loads_nullified,
        "its address loads must stay"
    );
}

#[test]
fn results_are_unchanged_in_a_closed_world() {
    // With no actual dynamic linker in the loop, the statically-linked
    // definition is used either way: semantics must match exactly.
    let expected = run_image(&optimize_and_link(&objects(), &[],OmLevel::None).unwrap().image, 1_000_000)
        .unwrap()
        .result;
    for level in [OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
        let out = optimize_and_link_with(
            &objects(),
            &[],
            level,
            &preempt(&["plugin", "shared_counter"]),
        )
        .unwrap();
        let r = run_image(&out.image, 1_000_000).unwrap();
        assert_eq!(r.result, expected, "{}", level.name());
    }
}

#[test]
fn preemptible_procedures_keep_their_prologues() {
    let out =
        optimize_and_link_with(&objects(), &[],OmLevel::Full, &preempt(&["plugin"])).unwrap();
    // plugin's entry must still start with its GPDISP pair: disassemble it.
    let addr = out.image.symbols["plugin"];
    let text = &out.image.segments[0];
    let off = (addr - text.base) as usize;
    let word = u32::from_le_bytes(text.bytes[off..off + 4].try_into().unwrap());
    let inst = om_alpha::decode(word).unwrap();
    assert!(
        matches!(inst, om_alpha::Inst::Mem { op: om_alpha::MemOp::Ldah, ra, .. } if ra == om_alpha::Reg::GP),
        "plugin must keep `ldah gp, ...(pv)` at entry, got {inst}"
    );
}
