//! Unit tests of the rescheduler: block-set preservation, pinning rules,
//! and quadword alignment placement.

use om_alpha::{Inst, Reg};
use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::resched::schedule_proc;
use om_core::sym::{translate, SMark};
use om_linker::{build_symbol_table, select_modules};
use std::collections::HashSet;

fn main_proc(src: &str) -> om_core::sym::SymProc {
    let objects = vec![
        crt0::module().unwrap(),
        compile_source("m", src, &CompileOpts::o2()).unwrap(),
    ];
    let modules = select_modules(&objects, &[]).unwrap();
    let symtab = build_symbol_table(&modules).unwrap();
    let program = translate(&modules, &symtab).unwrap();
    program.modules[1]
        .procs
        .iter()
        .find(|p| p.name == "main")
        .unwrap()
        .clone()
}

#[test]
fn scheduling_permutes_within_blocks_only() {
    let mut p = main_proc(
        "int a; int b;
         int main() {
           int i = 0;
           int s = 0;
           for (i = 0; i < 8; i = i + 1) { s = s + a * 3 + b * 5 + i; }
           a = s;
           return s;
         }",
    );
    let before = p.insts.clone();

    // Compute the block partition of the original order.
    let mut leaders: HashSet<usize> = HashSet::new();
    leaders.insert(0);
    for (k, i) in before.iter().enumerate() {
        if i.inst.is_control() {
            leaders.insert(k + 1);
        }
        if let SMark::BrLocal { target } = i.mark {
            let pos = before.iter().position(|x| x.id == target).unwrap();
            leaders.insert(pos);
        }
    }
    let mut starts: Vec<usize> = leaders.into_iter().filter(|&k| k < before.len()).collect();
    starts.sort_unstable();

    schedule_proc(&mut p.insts);
    assert_eq!(p.insts.len(), before.len(), "scheduling neither adds nor removes");

    // Each original block's id-set must map to the same positions.
    for (bi, &s) in starts.iter().enumerate() {
        let e = starts.get(bi + 1).copied().unwrap_or(before.len());
        let orig: HashSet<u32> = before[s..e].iter().map(|i| i.id).collect();
        let now: HashSet<u32> = p.insts[s..e].iter().map(|i| i.id).collect();
        assert_eq!(orig, now, "block {bi} must keep its instruction set");
    }
}

#[test]
fn branch_targets_keep_their_position_at_block_heads() {
    let mut p = main_proc(
        "int g;
         int main() {
           int i = 0;
           while (i < 5) { g = g + i; i = i + 1; }
           return g;
         }",
    );
    schedule_proc(&mut p.insts);
    // Every branch target must still be the first instruction of its block:
    // i.e., the instruction before a target must be a control transfer or
    // the target must be pinned at a block head (no non-control instruction
    // was hoisted above it within its block).
    let targets: Vec<u32> = p
        .insts
        .iter()
        .filter_map(|i| match i.mark {
            SMark::BrLocal { target } => Some(target),
            _ => None,
        })
        .collect();
    for t in targets {
        let pos = p.insts.iter().position(|i| i.id == t).unwrap();
        if pos == 0 {
            continue;
        }
        let prev = &p.insts[pos - 1];
        assert!(
            prev.inst.is_control() || prev.id < t,
            "instruction {} (originally after target {t}) may not precede it",
            prev.id
        );
    }
}

#[test]
fn alignment_pads_backward_targets_to_quadwords() {
    use om_core::{optimize_and_link, OmLevel};
    let objects = vec![
        crt0::module().unwrap(),
        compile_source(
            "m",
            "int g;
             int main() {
               int i = 0;
               for (i = 0; i < 100; i = i + 1) { g = g + i * 3; }
               return g;
             }",
            &CompileOpts::o2(),
        )
        .unwrap(),
    ];
    let out = optimize_and_link(&objects, &[], OmLevel::FullSched).unwrap();
    // Find every backward branch in the final image and check its target is
    // 8-byte aligned.
    let text = &out.image.segments[0];
    let mut checked = 0;
    for (k, w) in text.bytes.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes(w.try_into().unwrap());
        let Ok(Inst::Br { op, disp, .. }) = om_alpha::decode(word) else { continue };
        if matches!(op, om_alpha::BrOp::Bsr) {
            continue; // calls target procedure entries (16-aligned anyway)
        }
        if disp < 0 {
            let pc = text.base + 4 * k as u64;
            let target = (pc as i64 + 4 + disp as i64 * 4) as u64;
            assert_eq!(target % 8, 0, "backward target {target:#x} must be aligned");
            checked += 1;
        }
    }
    assert!(checked > 0, "the loop must produce a backward conditional branch");
    let _ = Reg::ZERO;
}
