//! Counter tests of the cached pipeline entry points, mirroring the
//! `pipeline_runs()` memoization tests in `om-bench`: cache hits must skip
//! the pipeline entirely, and a single-module edit must invalidate exactly
//! that module's translation entry.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::{
    optimize_and_link, optimize_and_link_cached, pipeline_runs, OmCaches, OmLevel, OmOptions,
};
use om_objfile::Module;
use om_workloads::build::CompileMode;
use om_workloads::scale::{build_scale, ScaleSpec};

/// A debug-friendly scale workload: the full `--scale` program shape
/// (per-module accessor/chain/entry procedures, cross-module calls, one
/// driver) at a size tier-1 tests can afford. The 1000-module proofs run in
/// release via `omfleet --scale` and `reproduce scale`.
fn small_scale_spec() -> ScaleSpec {
    ScaleSpec {
        name: "scale_cachetest".to_string(),
        modules: 12,
        procs_per_module: 6,
        globals_per_module: 4,
        iters: 1,
    }
}

fn program(tag: &str, helper_body: &str) -> Vec<Module> {
    let opts = CompileOpts::o2();
    vec![
        crt0::module().unwrap(),
        compile_source(
            &format!("main_{tag}"),
            "extern int helper(int);
             int acc;
             int main() { int i = 0;
                for (i = 0; i < 4; i = i + 1) { acc = acc + helper(i); }
                return acc; }",
            &opts,
        )
        .unwrap(),
        compile_source(&format!("helper_{tag}"), helper_body, &opts).unwrap(),
    ]
}

#[test]
fn link_cache_hits_skip_the_pipeline() {
    // Unique sources so this test's keys cannot collide with other tests
    // sharing the process (mirrors the memoize.rs convention).
    let objects = program("skip", "int helper(int x) { return x + 7; }");
    let caches = OmCaches::default();
    let options = OmOptions::default();

    let runs0 = pipeline_runs();
    let (first, hit1) =
        optimize_and_link_cached(&objects, &[], OmLevel::Full, &options, &caches).unwrap();
    assert!(!hit1);
    assert_eq!(pipeline_runs() - runs0, 1, "a cold link runs the pipeline once");

    let (second, hit2) =
        optimize_and_link_cached(&objects, &[], OmLevel::Full, &options, &caches).unwrap();
    assert!(hit2);
    assert_eq!(pipeline_runs() - runs0, 1, "a link-cache hit must not re-run the pipeline");
    assert_eq!(first.image.to_bytes(), second.image.to_bytes());

    // A different level is a different key: the pipeline runs again.
    let (_, hit3) =
        optimize_and_link_cached(&objects, &[], OmLevel::Simple, &options, &caches).unwrap();
    assert!(!hit3);
    assert_eq!(pipeline_runs() - runs0, 2);
}

#[test]
fn single_module_edit_invalidates_exactly_one_translation() {
    let caches = OmCaches::default();
    let options = OmOptions::default();

    let before = program("edit", "int helper(int x) { return x * 5; }");
    optimize_and_link_cached(&before, &[], OmLevel::Full, &options, &caches).unwrap();
    let base = caches.modules.stats();
    assert_eq!(base.misses, 3, "cold link translates each of the three modules once");
    assert_eq!(base.hits, 0);

    let after = program("edit", "int helper(int x) { return x * 6; }");
    let (out, hit) =
        optimize_and_link_cached(&after, &[], OmLevel::Full, &options, &caches).unwrap();
    assert!(!hit, "an edited module changes the link key");
    let now = caches.modules.stats();
    assert_eq!(now.misses - base.misses, 1, "only the edited module re-translates");
    assert_eq!(now.hits - base.hits, 2, "the unchanged modules are served from cache");

    let run = om_sim::run_image(&out.image, 1_000_000).unwrap();
    assert_eq!(run.result, (0..4).map(|i| i * 6).sum::<i64>());
}

#[test]
fn identical_requests_share_one_translation_per_module() {
    let caches = OmCaches::default();
    let options = OmOptions::default();
    let objects = program("share", "int helper(int x) { return x - 1; }");

    // Two different levels share the module cache even though their link
    // keys differ: per-module translation happens once per content hash.
    optimize_and_link_cached(&objects, &[], OmLevel::Simple, &options, &caches).unwrap();
    optimize_and_link_cached(&objects, &[], OmLevel::FullSched, &options, &caches).unwrap();
    let stats = caches.modules.stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.hits, 3, "the second level re-uses all three translations");
}

#[test]
fn scale_workload_edit_invalidates_one_of_many_modules() {
    // The `--scale` shape, sized for a debug run: a single-module edit on a
    // many-module program must recompute exactly that module — the property
    // `omfleet --scale 1000` holds to a 99% reuse floor in release.
    let b = build_scale(&small_scale_spec(), CompileMode::Each).unwrap();
    let caches = OmCaches::default();
    let options = OmOptions::default();

    optimize_and_link_cached(&b.objects, &b.libs, OmLevel::Full, &options, &caches).unwrap();
    let cold = caches.modules.stats();
    assert!(
        cold.misses as usize >= b.objects.len(),
        "cold link translates every module (user objects + library members)"
    );
    assert_eq!(cold.hits, 0);

    let mut edited = b.objects.clone();
    let idx = edited.len() / 2;
    edited[idx].data.extend_from_slice(&[9; 8]);
    let (out, hit) =
        optimize_and_link_cached(&edited, &b.libs, OmLevel::Full, &options, &caches).unwrap();
    assert!(!hit, "an edited module changes the link key");
    let warm = caches.modules.stats();
    assert_eq!(warm.misses - cold.misses, 1, "only the edited module re-translates");
    assert_eq!(
        warm.hits - cold.hits,
        cold.misses - 1,
        "every other module (including library members) is served from cache"
    );

    // The served image is the *edited* program, identical to an uncached run.
    let fresh = optimize_and_link(&edited, &b.libs, OmLevel::Full).unwrap();
    assert_eq!(out.image.to_bytes(), fresh.image.to_bytes());
}

#[test]
fn scale_workload_eviction_stays_bounded_and_correct() {
    // A module cache far smaller than the link: it must respect its
    // capacity, evict under pressure, and still serve a byte-identical
    // image — eviction is a performance event, never a correctness one.
    let b = build_scale(&small_scale_spec(), CompileMode::Each).unwrap();
    let cap = 4;
    let caches = OmCaches::new(cap, 2);
    let options = OmOptions::default();

    let (out, _) =
        optimize_and_link_cached(&b.objects, &b.libs, OmLevel::Full, &options, &caches).unwrap();
    let stats = caches.modules.stats();
    assert!(caches.modules.len() <= cap, "cache grew past its bound: {}", caches.modules.len());
    assert!(stats.evictions > 0, "a {}-module link must overflow a {cap}-entry cache", b.objects.len());

    let fresh = optimize_and_link(&b.objects, &b.libs, OmLevel::Full).unwrap();
    assert_eq!(
        out.image.to_bytes(),
        fresh.image.to_bytes(),
        "evictions must never change the served image"
    );
}
