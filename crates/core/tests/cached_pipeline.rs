//! Counter tests of the cached pipeline entry points, mirroring the
//! `pipeline_runs()` memoization tests in `om-bench`: cache hits must skip
//! the pipeline entirely, and a single-module edit must invalidate exactly
//! that module's translation entry.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::{
    optimize_and_link_cached, pipeline_runs, OmCaches, OmLevel, OmOptions,
};
use om_objfile::Module;

fn program(tag: &str, helper_body: &str) -> Vec<Module> {
    let opts = CompileOpts::o2();
    vec![
        crt0::module().unwrap(),
        compile_source(
            &format!("main_{tag}"),
            "extern int helper(int);
             int acc;
             int main() { int i = 0;
                for (i = 0; i < 4; i = i + 1) { acc = acc + helper(i); }
                return acc; }",
            &opts,
        )
        .unwrap(),
        compile_source(&format!("helper_{tag}"), helper_body, &opts).unwrap(),
    ]
}

#[test]
fn link_cache_hits_skip_the_pipeline() {
    // Unique sources so this test's keys cannot collide with other tests
    // sharing the process (mirrors the memoize.rs convention).
    let objects = program("skip", "int helper(int x) { return x + 7; }");
    let caches = OmCaches::default();
    let options = OmOptions::default();

    let runs0 = pipeline_runs();
    let (first, hit1) =
        optimize_and_link_cached(&objects, &[], OmLevel::Full, &options, &caches).unwrap();
    assert!(!hit1);
    assert_eq!(pipeline_runs() - runs0, 1, "a cold link runs the pipeline once");

    let (second, hit2) =
        optimize_and_link_cached(&objects, &[], OmLevel::Full, &options, &caches).unwrap();
    assert!(hit2);
    assert_eq!(pipeline_runs() - runs0, 1, "a link-cache hit must not re-run the pipeline");
    assert_eq!(first.image.to_bytes(), second.image.to_bytes());

    // A different level is a different key: the pipeline runs again.
    let (_, hit3) =
        optimize_and_link_cached(&objects, &[], OmLevel::Simple, &options, &caches).unwrap();
    assert!(!hit3);
    assert_eq!(pipeline_runs() - runs0, 2);
}

#[test]
fn single_module_edit_invalidates_exactly_one_translation() {
    let caches = OmCaches::default();
    let options = OmOptions::default();

    let before = program("edit", "int helper(int x) { return x * 5; }");
    optimize_and_link_cached(&before, &[], OmLevel::Full, &options, &caches).unwrap();
    let base = caches.modules.stats();
    assert_eq!(base.misses, 3, "cold link translates each of the three modules once");
    assert_eq!(base.hits, 0);

    let after = program("edit", "int helper(int x) { return x * 6; }");
    let (out, hit) =
        optimize_and_link_cached(&after, &[], OmLevel::Full, &options, &caches).unwrap();
    assert!(!hit, "an edited module changes the link key");
    let now = caches.modules.stats();
    assert_eq!(now.misses - base.misses, 1, "only the edited module re-translates");
    assert_eq!(now.hits - base.hits, 2, "the unchanged modules are served from cache");

    let run = om_sim::run_image(&out.image, 1_000_000).unwrap();
    assert_eq!(run.result, (0..4).map(|i| i * 6).sum::<i64>());
}

#[test]
fn identical_requests_share_one_translation_per_module() {
    let caches = OmCaches::default();
    let options = OmOptions::default();
    let objects = program("share", "int helper(int x) { return x - 1; }");

    // Two different levels share the module cache even though their link
    // keys differ: per-module translation happens once per content hash.
    optimize_and_link_cached(&objects, &[], OmLevel::Simple, &options, &caches).unwrap();
    optimize_and_link_cached(&objects, &[], OmLevel::FullSched, &options, &caches).unwrap();
    let stats = caches.modules.stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.hits, 3, "the second level re-uses all three translations");
}
