//! Property test: `Profile` JSON serialization round-trips exactly under
//! randomly generated contents, including overflow-adjacent counts — the
//! profile travels between `asim --profile` and `om --profile-use` as a
//! file, so the wire format must be lossless for every value a run can
//! produce (`u64` saturates at `u64::MAX`, which must survive the trip).

use om_core::{CallEdge, ProcProfile, Profile};
use om_prng::StdRng;

/// Counts stressing the integer-parsing edge: small, around `i64::MAX` (a
/// sign-extension bug's favorite spot), and right at `u64::MAX` (where a
/// `checked_mul`/`checked_add`-less parser wraps).
fn gen_count(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0..4) {
        0 => rng.gen_range(0..1000) as u64,
        1 => u64::from(u32::MAX) + rng.gen_range(0..5) as u64,
        2 => i64::MAX as u64 - rng.gen_range(0..3) as u64 + rng.gen_range(0..6) as u64,
        _ => u64::MAX - rng.gen_range(0..3) as u64,
    }
}

fn gen_name(rng: &mut StdRng, i: usize) -> String {
    // Exercise the escaper too: names with quotes, backslashes, control
    // characters, and non-ASCII — hostile but legal symbol spellings.
    match rng.gen_range(0..5) {
        0 => format!("p{i}"),
        1 => format!("p{i}.module_{}", rng.gen_range(0..10)),
        2 => format!("we\"ird{i}"),
        3 => format!("tab\there\\{i}"),
        _ => format!("unicodé_{i}_\u{1F600}"),
    }
}

fn gen_profile(rng: &mut StdRng) -> Profile {
    let n = rng.gen_range(0..20);
    let procs: Vec<ProcProfile> = (0..n)
        .map(|i| ProcProfile {
            name: gen_name(rng, i),
            calls: gen_count(rng),
            insts: gen_count(rng),
            back_targets: (0..rng.gen_range(0..6)).map(|_| gen_count(rng)).collect(),
        })
        .collect();
    let edges = (0..rng.gen_range(0..15))
        .map(|k| CallEdge {
            caller: gen_name(rng, k),
            callee: gen_name(rng, k + 100),
            count: gen_count(rng),
        })
        .collect();
    let mut p = Profile { total_insts: gen_count(rng), procs, edges };
    p.normalize();
    p
}

#[test]
fn roundtrip_is_lossless_for_random_profiles() {
    let mut rng = StdRng::seed_from_u64(0x0F11E_5EED);
    for case in 0..500 {
        let p = gen_profile(&mut rng);
        let json = p.to_json();
        let back = Profile::from_json(&json)
            .unwrap_or_else(|e| panic!("case {case}: rejected own output: {e}\n{json}"));
        assert_eq!(back, p, "case {case}: roundtrip changed the profile\n{json}");
        // Serialization is canonical: a second trip is byte-identical.
        assert_eq!(back.to_json(), json, "case {case}: non-canonical serialization");
    }
}

#[test]
fn extreme_counts_survive_exactly() {
    let p = {
        let mut p = Profile {
            total_insts: u64::MAX,
            procs: vec![ProcProfile {
                name: "edge".into(),
                calls: u64::MAX,
                insts: u64::MAX - 1,
                back_targets: vec![0, 1, i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX],
            }],
            edges: vec![CallEdge {
                caller: "edge".into(),
                callee: "edge".into(),
                count: u64::MAX,
            }],
        };
        p.normalize();
        p
    };
    let back = Profile::from_json(&p.to_json()).expect("roundtrip");
    assert_eq!(back, p);
    assert_eq!(back.procs[0].back_targets[4], u64::MAX);
}

#[test]
fn overflowing_count_is_rejected_not_wrapped() {
    // One digit past u64::MAX: a wrapping parser would accept this as a
    // small number; ours must refuse the profile outright.
    let json = r#"{"schema": "om-profile/v1", "total_insts": 18446744073709551616, "procs": [], "edges": []}"#;
    assert!(Profile::from_json(json).is_err());
}

#[test]
fn truncated_profiles_are_rejected() {
    let mut rng = StdRng::seed_from_u64(7);
    let p = gen_profile(&mut rng);
    let json = p.to_json();
    // Chop the serialization at a few interior points; every prefix must be
    // an error, never a silently partial profile.
    for cut in [json.len() / 4, json.len() / 2, json.len() - 2] {
        let mut cut = cut;
        while !json.is_char_boundary(cut) {
            cut -= 1;
        }
        assert!(
            Profile::from_json(&json[..cut]).is_err(),
            "prefix of {cut} bytes parsed successfully"
        );
    }
}
