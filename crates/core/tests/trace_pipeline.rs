//! Acceptance tests for pipeline observability: every enabled pass appears
//! as a span, per-pass counter deltas reconcile exactly with the OmStats
//! totals, tracing never changes the linked image, and the relink cache
//! reports deterministic hit/miss/coalesce counters.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::obs::reconcile;
use om_core::{
    optimize_and_link_cached, optimize_and_link_with, OmCaches, OmLevel, OmOptions, OmOutput,
    Profile,
};
use om_obs::Trace;
use om_objfile::Module;

/// A program with calls, globals, and loops — enough to exercise every
/// transformation (JSR→BSR, address-load conversion/nullification, nop
/// deletion, rescheduling alignment).
fn objects(tag: &str) -> Vec<Module> {
    let opts = CompileOpts::o2();
    vec![
        crt0::module().unwrap(),
        compile_source(
            &format!("tr_main_{tag}"),
            "extern int twist(int);
             int acc; int bias;
             int main() { int i = 0;
                for (i = 0; i < 9; i = i + 1) { acc = acc + twist(i) + bias; }
                return acc; }",
            &opts,
        )
        .unwrap(),
        compile_source(
            &format!("tr_help_{tag}"),
            "int bias;
             int twist(int x) { int j = 0;
                while (j < x) { j = j + 2; }
                return x + j + bias; }",
            &opts,
        )
        .unwrap(),
    ]
}

/// Runs one uncached link under a fresh trace, returning the output and the
/// trace.
fn traced_link(objs: &[Module], level: OmLevel, options: &OmOptions) -> (OmOutput, Trace) {
    let trace = Trace::new();
    let out = {
        let _g = trace.install();
        optimize_and_link_with(objs, &[], level, options).unwrap()
    };
    (out, trace)
}

#[test]
fn every_enabled_pass_has_a_span() {
    let objs = objects("spans");
    let (_, trace) = traced_link(&objs, OmLevel::FullSched, &OmOptions::default());
    let names: Vec<String> = trace.sink().spans.iter().map(|s| s.name.clone()).collect();
    for want in [
        "pipeline",
        "select",
        "pass.translate",
        "pass.resolve",
        "pass.calls",
        "pass.convert",
        "pass.nullify",
        "pass.resched",
        "emit",
        "link",
    ] {
        assert!(names.iter().any(|n| n == want), "missing span `{want}` in {names:?}");
    }
    // OM-simple has no nullify/resched pass; the span set reflects that.
    let (_, simple) = traced_link(&objs, OmLevel::Simple, &OmOptions::default());
    let simple_names: Vec<String> =
        simple.sink().spans.iter().map(|s| s.name.clone()).collect();
    assert!(simple_names.iter().any(|n| n == "pass.convert"));
    assert!(!simple_names.iter().any(|n| n == "pass.nullify"));
    assert!(!simple_names.iter().any(|n| n == "pass.resched"));
}

#[test]
fn emitted_trace_json_is_valid_and_nests() {
    let objs = objects("json");
    let (_, trace) = traced_link(&objs, OmLevel::Full, &OmOptions::default());
    let json = trace.chrome_json("om-test");
    let names = om_obs::validate_chrome_trace(&json).expect("trace must validate");
    assert!(names.iter().any(|n| n == "pipeline"));
    // Every pass span nests strictly inside the pipeline span.
    let sink = trace.sink();
    let pipeline = sink.spans.iter().find(|s| s.name == "pipeline").unwrap();
    for s in sink.spans.iter().filter(|s| s.name.starts_with("pass.")) {
        assert!(s.start_ns >= pipeline.start_ns, "{} starts before pipeline", s.name);
        assert!(
            s.start_ns + s.dur_ns <= pipeline.start_ns + pipeline.dur_ns,
            "{} ends after pipeline",
            s.name
        );
        assert!(s.depth > pipeline.depth);
    }
}

#[test]
fn pass_deltas_reconcile_with_stats_at_every_level() {
    let objs = objects("recon");
    for level in [OmLevel::None, OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
        let (out, trace) = traced_link(&objs, level, &OmOptions::default());
        let sums = reconcile(&trace.counters(), &out.stats)
            .unwrap_or_else(|e| panic!("{}: {e}", level.name()));
        if level == OmLevel::Full || level == OmLevel::FullSched {
            // OM-full deletes code; the signed sums must show it.
            assert!(sums["insts_deleted"] > 0, "{}: {sums:?}", level.name());
        }
    }
}

#[test]
fn pass_deltas_reconcile_under_pgo() {
    let objs = objects("pgo");
    // Profile a real run of the FullSched image, then relink with it.
    let (base, _) = traced_link(&objs, OmLevel::FullSched, &OmOptions::default());
    let (_, profile): (_, Profile) = om_sim::run_profiled_fast(&base.image, 1_000_000).unwrap();
    let options = OmOptions { profile: Some(profile), ..OmOptions::default() };
    let (out, trace) = traced_link(&objs, OmLevel::FullSched, &options);
    let counters = trace.counters();
    assert!(
        counters.keys().any(|k| k.starts_with("pass.pgo.")),
        "PGO pass left no counters: {counters:?}"
    );
    reconcile(&counters, &out.stats).unwrap();
}

#[test]
fn tracing_changes_no_image_byte() {
    let objs = objects("bytes");
    for level in [OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
        let plain = optimize_and_link_with(&objs, &[], level, &OmOptions::default()).unwrap();
        let (traced, trace) = traced_link(&objs, level, &OmOptions::default());
        assert_eq!(
            plain.image.to_bytes(),
            traced.image.to_bytes(),
            "{}: tracing altered the image",
            level.name()
        );
        assert_eq!(plain.stats, traced.stats);
        // The recorded image size matches the real one.
        assert_eq!(
            trace.counters().get("pipeline.image_bytes"),
            Some(&(plain.image.to_bytes().len() as u64))
        );
    }
}

#[test]
fn cache_counters_report_hits_and_misses() {
    let objs = objects("cache");
    let caches = OmCaches::new(64, 16);
    let options = OmOptions::default();
    let trace = Trace::new();
    {
        let _g = trace.install();
        let (_, hit) =
            optimize_and_link_cached(&objs, &[], OmLevel::Full, &options, &caches).unwrap();
        assert!(!hit);
        let (_, hit) =
            optimize_and_link_cached(&objs, &[], OmLevel::Full, &options, &caches).unwrap();
        assert!(hit);
    }
    let counters = trace.counters();
    assert_eq!(counters.get("cache.links.miss"), Some(&1));
    assert_eq!(counters.get("cache.links.hit"), Some(&1));
    // The cold link translated each of the three modules through the module
    // cache; the warm link never reached translation.
    assert_eq!(counters.get("cache.modules.miss"), Some(&(objs.len() as u64)));
    // Counter state agrees with the cache's own accounting.
    assert_eq!(counters.get("cache.links.miss"), Some(&caches.links.stats().misses));
    assert_eq!(counters.get("cache.links.hit"), Some(&caches.links.stats().hits));
}
