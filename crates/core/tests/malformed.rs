//! Regression tests: malformed or internally-corrupted inputs must surface
//! as typed [`OmError`]s through OM's public entry points, never as panics.
//! A persistent link server (`omd`) reuses this pipeline per request; one
//! bad module must fail its request, not the process.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::sym::{emit_all, translate, OmError, SMark};
use om_core::{optimize_and_link, OmLevel};
use om_linker::{build_symbol_table, select_modules};
use om_objfile::{LitaEntry, Module, Reloc, RelocKind, SecId, SymId, Symbol};

fn compiled(name: &str, src: &str) -> Module {
    compile_source(name, src, &CompileOpts::o2()).unwrap()
}

#[test]
fn undecodable_text_is_a_typed_error() {
    // All-zero words (PALcode function 0) are not valid encodings;
    // translation must reject the module instead of panicking mid-decode.
    let mut m = Module::new("bad");
    m.text = vec![0; 16];
    m.symbols.push(Symbol::proc("__start", 0, 16, 0));
    let e = optimize_and_link(&[m], &[], OmLevel::Full).unwrap_err();
    assert!(matches!(e, OmError::BadText { .. }), "{e}");
}

#[test]
fn text_not_tiled_by_procedures_is_a_typed_error() {
    // Eight bytes of text, but the only procedure claims four: the
    // remainder belongs to nothing, which OM's conservative translation
    // refuses.
    let mut m = Module::new("gap");
    m.text = vec![0; 8];
    m.symbols.push(Symbol::proc("__start", 0, 4, 0));
    let e = optimize_and_link(&[m], &[], OmLevel::Full).unwrap_err();
    assert!(matches!(e, OmError::BadText { .. }), "{e}");
}

#[test]
fn lituse_crossing_procedures_is_a_typed_error() {
    // A LITUSE pointing at a load outside its own procedure: the link the
    // optimizer would follow dangles.
    let m = compiled(
        "m",
        "int g; int main() { return g; }
         int other(int x) { return x + 1; }",
    );
    let mut bad = m.clone();
    // Retarget the first LITUSE to an offset far past the text.
    let mut tampered = false;
    for r in &mut bad.relocs {
        if let RelocKind::LituseBase { load_offset } = &mut r.kind {
            *load_offset = 1 << 20;
            tampered = true;
            break;
        }
    }
    assert!(tampered, "expected a LituseBase in the compiled module");
    // The tampered lituse no longer points at a Literal, so validation (or
    // translation, whichever sees it first) must reject it with a typed
    // error.
    let objects = [crt0::module().unwrap(), bad];
    let e = optimize_and_link(&objects, &[], OmLevel::Full).unwrap_err();
    assert!(
        matches!(e, OmError::Link(_) | OmError::BadReloc { .. }),
        "{e}"
    );
}

#[test]
fn truncated_patch_field_fails_om_link_too() {
    // The linker-level regression (formerly an out-of-bounds patch panic)
    // must also surface typed through OM's pipeline.
    let mut m = Module::new("m");
    m.text = vec![0; 16];
    m.data = vec![0; 16];
    m.symbols.push(Symbol::proc("__start", 0, 16, 0));
    m.symbols.push(Symbol::data("g", SecId::Data, 0, 8));
    m.lita.push(LitaEntry { sym: SymId(1), addend: 0 });
    m.relocs.push(Reloc::text(14, RelocKind::Gprel16 { sym: SymId(1), addend: 0, gp_group: 0 }));
    let e = optimize_and_link(&[m], &[], OmLevel::Simple).unwrap_err();
    assert!(matches!(e, OmError::Link(_)), "{e}");
}

#[test]
fn dangling_instruction_id_at_emit_is_internal_error_not_panic() {
    // Corrupt a translated program the way a buggy transformation would —
    // a local branch whose target id no longer exists — and emit. The old
    // emit path indexed `off_of[id]` and panicked; it must now report
    // OmError::Internal to the offending request.
    let objects = [
        crt0::module().unwrap(),
        compiled(
            "m",
            "int main() { int i = 0; int s = 0;
               for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }",
        ),
    ];
    let modules = select_modules(&objects, &[]).unwrap();
    let symtab = build_symbol_table(&modules).unwrap();
    let mut program = translate(&modules, &symtab).unwrap();

    let mut corrupted = false;
    'outer: for m in &mut program.modules {
        for p in &mut m.procs {
            for i in &mut p.insts {
                if let SMark::BrLocal { target } = &mut i.mark {
                    *target = 0xDEAD_BEEF;
                    corrupted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(corrupted, "expected at least one local branch to corrupt");

    let e = emit_all(&program).unwrap_err();
    assert!(matches!(e, OmError::Internal { .. }), "{e}");
    assert!(e.to_string().contains("internal invariant"), "{e}");
}

#[test]
fn dangling_lituse_link_at_emit_is_internal_error_not_panic() {
    let objects = [
        crt0::module().unwrap(),
        compiled("m", "int g; int main() { return g + 1; }"),
    ];
    let modules = select_modules(&objects, &[]).unwrap();
    let symtab = build_symbol_table(&modules).unwrap();
    let mut program = translate(&modules, &symtab).unwrap();

    let mut corrupted = false;
    'outer: for m in &mut program.modules {
        for p in &mut m.procs {
            for i in &mut p.insts {
                if let SMark::LituseBase { load } = &mut i.mark {
                    *load = 0xDEAD_BEEF;
                    corrupted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(corrupted, "expected at least one LITUSE to corrupt");

    let e = emit_all(&program).unwrap_err();
    assert!(matches!(e, OmError::Internal { .. }), "{e}");
}
