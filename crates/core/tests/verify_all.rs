//! Tier-1 verifier sweep: every workload, both compile modes, all four OM
//! levels must link with `OmOptions::verify` and report zero violations.
//! This is the whole-program analogue of the per-invariant unit tests in
//! `om_core::verify` — it proves the invariants hold on real compiler
//! output, not just hand-built modules.

use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_workloads::{build::build, spec, CompileMode};

#[test]
fn verifier_passes_on_every_workload_mode_and_level() {
    let options = OmOptions { verify: true, ..OmOptions::default() };
    for s in spec::all() {
        let quick = spec::quick(&s);
        for mode in CompileMode::ALL {
            let b = build(&quick, mode).expect("build");
            for level in OmLevel::ALL {
                let out = optimize_and_link_with(&b.objects, &b.libs, level, &options)
                    .unwrap_or_else(|e| {
                        panic!("{} [{}] {}: {e}", s.name, mode.name(), level.name())
                    });
                let report = out.verify.expect("verify requested");
                assert!(
                    report.checks > 0,
                    "{} [{}] {}: no checks ran",
                    s.name,
                    mode.name(),
                    level.name()
                );
            }
        }
    }
}
