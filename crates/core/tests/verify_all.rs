//! Tier-1 verifier sweep: every workload, both compile modes, all four OM
//! levels must link with `OmOptions::verify` and report zero violations.
//! This is the whole-program analogue of the per-invariant unit tests in
//! `om_core::verify` — it proves the invariants hold on real compiler
//! output, not just hand-built modules.
//!
//! The profile-guided sweep goes one step further: it runs each scheduled
//! image, collects an execution profile, relinks with the profile (verify
//! still on), and re-diffs the checksum — profile-guided layout must never
//! change program meaning.

use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_sim::{run_image, run_profiled};
use om_workloads::{build::build, spec, CompileMode};

/// Simulator instruction budget per run (quick-spec workloads are small).
const SIM_STEPS: u64 = 200_000_000;

#[test]
fn verifier_passes_on_every_workload_mode_and_level() {
    let options = OmOptions { verify: true, ..OmOptions::default() };
    for s in spec::all() {
        let quick = spec::quick(&s);
        for mode in CompileMode::ALL {
            let b = build(&quick, mode).expect("build");
            for level in OmLevel::ALL {
                let out = optimize_and_link_with(&b.objects, &b.libs, level, &options)
                    .unwrap_or_else(|e| {
                        panic!("{} [{}] {}: {e}", s.name, mode.name(), level.name())
                    });
                let report = out.verify.expect("verify requested");
                assert!(
                    report.checks > 0,
                    "{} [{}] {}: no checks ran",
                    s.name,
                    mode.name(),
                    level.name()
                );
            }
        }
    }
}

#[test]
fn pgo_relink_verifies_and_preserves_checksums_on_every_workload() {
    let options = OmOptions { verify: true, ..OmOptions::default() };
    for s in spec::all() {
        let quick = spec::quick(&s);
        for mode in CompileMode::ALL {
            let b = build(&quick, mode).expect("build");
            let sched =
                optimize_and_link_with(&b.objects, &b.libs, OmLevel::FullSched, &options)
                    .unwrap_or_else(|e| panic!("{} [{}] sched: {e}", s.name, mode.name()));
            let (reference, profile) = run_profiled(&sched.image, SIM_STEPS)
                .unwrap_or_else(|e| panic!("{} [{}] profile run: {e}", s.name, mode.name()));
            let popts = OmOptions { profile: Some(profile), ..options.clone() };
            let pgo = optimize_and_link_with(&b.objects, &b.libs, OmLevel::FullSched, &popts)
                .unwrap_or_else(|e| panic!("{} [{}] pgo: {e}", s.name, mode.name()));
            assert!(pgo.verify.expect("verify requested").checks > 0);
            let r = run_image(&pgo.image, SIM_STEPS)
                .unwrap_or_else(|e| panic!("{} [{}] pgo run: {e}", s.name, mode.name()));
            assert_eq!(
                r.result,
                reference.result,
                "{} [{}]: pgo relink changed the checksum",
                s.name,
                mode.name()
            );
        }
    }
}
