120000000:  27bb 2001   ldah gp, 8193(pv)
120000004:  23bd 8000   lda gp, -32768(gp)
120000008:  d340 0065   bsr ra, 0x1200001a0
12000000c:  0000 0555   call_pal halt
120000010:  0000 0556   call_pal write_int
120000014:  47f0 0400   bis zero, r16, r0
120000018:  6bfa 8000   ret zero, (ra)
12000001c:  0000 0000   .word 0x00000000
120000020:  47ff 0402   bis zero, zero, r2
120000024:  47f0 0401   bis zero, r16, r1
120000028:  47ff 0402   bis zero, zero, r2
12000002c:  2fff 0000   ldq_u zero, 0(zero)
120000030:  4041 39a3   cmplt r2, 9, r3
120000034:  e460 000a   beq r3, 0x120000060
120000038:  4c20 7403   mulq r1, 3, r3
12000003c:  4440 f004   and r2, 7, r4
120000040:  239d 8000   lda at, -32768(gp)
120000044:  409c 065c   s8addq r4, at, at
120000048:  a49c 0000   ldq r4, 0(at)
12000004c:  4064 0404   addq r3, r4, r4
120000050:  47e4 0401   bis zero, r4, r1
120000054:  4040 3404   addq r2, 1, r4
120000058:  47e4 0402   bis zero, r4, r2
12000005c:  c3ff fff4   br zero, 0x120000030
120000060:  47e1 0400   bis zero, r1, r0
120000064:  6bfa 8000   ret zero, (ra)
120000068:  47ff 0402   bis zero, zero, r2
12000006c:  47f0 0401   bis zero, r16, r1
120000070:  47ff 0402   bis zero, zero, r2
120000074:  2fff 0000   ldq_u zero, 0(zero)
120000078:  4040 b9a3   cmplt r2, 5, r3
12000007c:  e460 000f   beq r3, 0x1200000bc
120000080:  4440 f004   and r2, 7, r4
120000084:  239d 8000   lda at, -32768(gp)
120000088:  409c 065c   s8addq r4, at, at
12000008c:  4022 0403   addq r1, r2, r3
120000090:  4820 3784   sra r1, 1, r4
120000094:  b47c 0000   stq r3, 0(at)
120000098:  4480 f004   and r4, 7, r4
12000009c:  239d 8000   lda at, -32768(gp)
1200000a0:  409c 065c   s8addq r4, at, at
1200000a4:  a49c 0000   ldq r4, 0(at)
1200000a8:  4024 0404   addq r1, r4, r4
1200000ac:  47e4 0401   bis zero, r4, r1
1200000b0:  4040 3404   addq r2, 1, r4
1200000b4:  47e4 0402   bis zero, r4, r2
1200000b8:  c3ff ffef   br zero, 0x120000078
1200000bc:  47e1 0400   bis zero, r1, r0
1200000c0:  6bfa 8000   ret zero, (ra)
1200000c4:  23de ffe0   lda sp, -32(sp)
1200000c8:  b75e 0000   stq ra, 0(sp)
1200000cc:  b53e 0008   stq r9, 8(sp)
1200000d0:  47f0 0409   bis zero, r16, r9
1200000d4:  4d20 7401   mulq r9, 3, r1
1200000d8:  b55e 0010   stq r10, 16(sp)
1200000dc:  47f1 040a   bis zero, r17, r10
1200000e0:  402a 0401   addq r1, r10, r1
1200000e4:  b57e 0018   stq r11, 24(sp)
1200000e8:  47e1 0410   bis zero, r1, r16
1200000ec:  d35f ffde   bsr ra, 0x120000068
1200000f0:  4920 5722   sll r9, 2, r2
1200000f4:  47e0 0401   bis zero, r0, r1
1200000f8:  4422 0802   xor r1, r2, r2
1200000fc:  47e2 040b   bis zero, r2, r11
120000100:  453f f002   and r9, 255, r2
120000104:  4049 b5a2   cmpeq r2, 77, r2
120000108:  e440 0005   beq r2, 0x120000120
12000010c:  47ea 0410   bis zero, r10, r16
120000110:  d35f ffc3   bsr ra, 0x120000020
120000114:  47e0 0402   bis zero, r0, r2
120000118:  4162 0402   addq r11, r2, r2
12000011c:  47e2 040b   bis zero, r2, r11
120000120:  47eb 0400   bis zero, r11, r0
120000124:  a75e 0000   ldq ra, 0(sp)
120000128:  a53e 0008   ldq r9, 8(sp)
12000012c:  a55e 0010   ldq r10, 16(sp)
120000130:  a57e 0018   ldq r11, 24(sp)
120000134:  23de 0020   lda sp, 32(sp)
120000138:  6bfa 8000   ret zero, (ra)
12000013c:  0000 0000   .word 0x00000000
120000140:  47f0 0401   bis zero, r16, r1
120000144:  4c22 3403   mulq r1, 17, r3
120000148:  23de fff0   lda sp, -16(sp)
12000014c:  47f1 0402   bis zero, r17, r2
120000150:  b75e 0000   stq ra, 0(sp)
120000154:  4062 0403   addq r3, r2, r3
120000158:  b53e 0008   stq r9, 8(sp)
12000015c:  47e3 0409   bis zero, r3, r9
120000160:  4460 7003   and r3, 3, r3
120000164:  4060 15a3   cmpeq r3, 0, r3
120000168:  e460 0006   beq r3, 0x120000184
12000016c:  47e2 0410   bis zero, r2, r16
120000170:  47e1 0411   bis zero, r1, r17
120000174:  d35f ffd3   bsr ra, 0x1200000c4
120000178:  47e0 0403   bis zero, r0, r3
12000017c:  4123 0403   addq r9, r3, r3
120000180:  47e3 0409   bis zero, r3, r9
120000184:  47e9 0400   bis zero, r9, r0
120000188:  a75e 0000   ldq ra, 0(sp)
12000018c:  a53e 0008   ldq r9, 8(sp)
120000190:  23de 0010   lda sp, 16(sp)
120000194:  6bfa 8000   ret zero, (ra)
120000198:  0000 0000   .word 0x00000000
12000019c:  0000 0000   .word 0x00000000
1200001a0:  23de ffe0   lda sp, -32(sp)
1200001a4:  b75e 0000   stq ra, 0(sp)
1200001a8:  b53e 0008   stq r9, 8(sp)
1200001ac:  b55e 0010   stq r10, 16(sp)
1200001b0:  47ff 0409   bis zero, zero, r9
1200001b4:  b57e 0018   stq r11, 24(sp)
1200001b8:  47ff 0409   bis zero, zero, r9
1200001bc:  215f 0001   lda r10, 1(zero)
1200001c0:  4121 99a1   cmplt r9, 12, r1
1200001c4:  e420 0013   beq r1, 0x120000214
1200001c8:  273f 0001   ldah r25, 1(zero)
1200001cc:  2339 ffff   lda r25, -1(r25)
1200001d0:  4559 0001   and r10, r25, r1
1200001d4:  47e9 0410   bis zero, r9, r16
1200001d8:  47e1 0411   bis zero, r1, r17
1200001dc:  d35f ffb9   bsr ra, 0x1200000c4
1200001e0:  47e0 0401   bis zero, r0, r1
1200001e4:  4141 040b   addq r10, r1, r11
1200001e8:  457f f001   and r11, 255, r1
1200001ec:  47eb 040a   bis zero, r11, r10
1200001f0:  47e1 0410   bis zero, r1, r16
1200001f4:  47e9 0411   bis zero, r9, r17
1200001f8:  d35f ffd1   bsr ra, 0x120000140
1200001fc:  47e0 0401   bis zero, r0, r1
120000200:  4561 0801   xor r11, r1, r1
120000204:  47e1 040a   bis zero, r1, r10
120000208:  4120 3401   addq r9, 1, r1
12000020c:  47e1 0409   bis zero, r1, r9
120000210:  c3ff ffeb   br zero, 0x1200001c0
120000214:  273f 0001   ldah r25, 1(zero)
120000218:  2339 ffff   lda r25, -1(r25)
12000021c:  4559 0001   and r10, r25, r1
120000220:  a75e 0000   ldq ra, 0(sp)
120000224:  a53e 0008   ldq r9, 8(sp)
120000228:  a55e 0010   ldq r10, 16(sp)
12000022c:  a57e 0018   ldq r11, 24(sp)
120000230:  47e1 0400   bis zero, r1, r0
120000234:  23de 0020   lda sp, 32(sp)
120000238:  6bfa 8000   ret zero, (ra)
