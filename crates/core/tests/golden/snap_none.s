120000000:  27bb 2001   ldah gp, 8193(pv)
120000004:  23bd 8000   lda gp, -32768(gp)
120000008:  a77d 8000   ldq pv, -32768(gp)
12000000c:  6b5b 4000   jsr ra, (pv)
120000010:  0000 0555   call_pal halt
120000014:  27bb 2000   ldah gp, 8192(pv)
120000018:  23bd 7fec   lda gp, 32748(gp)
12000001c:  0000 0556   call_pal write_int
120000020:  47f0 0400   bis zero, r16, r0
120000024:  6bfa 8000   ret zero, (ra)
120000028:  0000 0000   .word 0x00000000
12000002c:  0000 0000   .word 0x00000000
120000030:  47ff 0402   bis zero, zero, r2
120000034:  47f0 0401   bis zero, r16, r1
120000038:  47ff 0402   bis zero, zero, r2
12000003c:  4041 39a3   cmplt r2, 9, r3
120000040:  e460 000a   beq r3, 0x12000006c
120000044:  4c20 7403   mulq r1, 3, r3
120000048:  a79d 8008   ldq at, -32760(gp)
12000004c:  4440 f004   and r2, 7, r4
120000050:  409c 065c   s8addq r4, at, at
120000054:  a49c 0000   ldq r4, 0(at)
120000058:  4064 0404   addq r3, r4, r4
12000005c:  47e4 0401   bis zero, r4, r1
120000060:  4040 3404   addq r2, 1, r4
120000064:  47e4 0402   bis zero, r4, r2
120000068:  c3ff fff4   br zero, 0x12000003c
12000006c:  47e1 0400   bis zero, r1, r0
120000070:  6bfa 8000   ret zero, (ra)
120000074:  47ff 0402   bis zero, zero, r2
120000078:  47f0 0401   bis zero, r16, r1
12000007c:  47ff 0402   bis zero, zero, r2
120000080:  4040 b9a3   cmplt r2, 5, r3
120000084:  e460 000f   beq r3, 0x1200000c4
120000088:  a79d 8008   ldq at, -32760(gp)
12000008c:  4440 f004   and r2, 7, r4
120000090:  409c 065c   s8addq r4, at, at
120000094:  4022 0403   addq r1, r2, r3
120000098:  b47c 0000   stq r3, 0(at)
12000009c:  a79d 8008   ldq at, -32760(gp)
1200000a0:  4820 3784   sra r1, 1, r4
1200000a4:  4480 f004   and r4, 7, r4
1200000a8:  409c 065c   s8addq r4, at, at
1200000ac:  a49c 0000   ldq r4, 0(at)
1200000b0:  4024 0404   addq r1, r4, r4
1200000b4:  47e4 0401   bis zero, r4, r1
1200000b8:  4040 3404   addq r2, 1, r4
1200000bc:  47e4 0402   bis zero, r4, r2
1200000c0:  c3ff ffef   br zero, 0x120000080
1200000c4:  47e1 0400   bis zero, r1, r0
1200000c8:  6bfa 8000   ret zero, (ra)
1200000cc:  23de ffe0   lda sp, -32(sp)
1200000d0:  b75e 0000   stq ra, 0(sp)
1200000d4:  b53e 0008   stq r9, 8(sp)
1200000d8:  47f0 0409   bis zero, r16, r9
1200000dc:  4d20 7401   mulq r9, 3, r1
1200000e0:  b55e 0010   stq r10, 16(sp)
1200000e4:  47f1 040a   bis zero, r17, r10
1200000e8:  27bb 2000   ldah gp, 8192(pv)
1200000ec:  402a 0401   addq r1, r10, r1
1200000f0:  23bd 7f34   lda gp, 32564(gp)
1200000f4:  47e1 0410   bis zero, r1, r16
1200000f8:  b57e 0018   stq r11, 24(sp)
1200000fc:  d35f ffdd   bsr ra, 0x120000074
120000100:  4920 5722   sll r9, 2, r2
120000104:  47e0 0401   bis zero, r0, r1
120000108:  4422 0802   xor r1, r2, r2
12000010c:  47e2 040b   bis zero, r2, r11
120000110:  453f f002   and r9, 255, r2
120000114:  4049 b5a2   cmpeq r2, 77, r2
120000118:  e440 0005   beq r2, 0x120000130
12000011c:  47ea 0410   bis zero, r10, r16
120000120:  d35f ffc3   bsr ra, 0x120000030
120000124:  47e0 0402   bis zero, r0, r2
120000128:  4162 0402   addq r11, r2, r2
12000012c:  47e2 040b   bis zero, r2, r11
120000130:  47eb 0400   bis zero, r11, r0
120000134:  a75e 0000   ldq ra, 0(sp)
120000138:  a53e 0008   ldq r9, 8(sp)
12000013c:  a55e 0010   ldq r10, 16(sp)
120000140:  a57e 0018   ldq r11, 24(sp)
120000144:  23de 0020   lda sp, 32(sp)
120000148:  6bfa 8000   ret zero, (ra)
12000014c:  0000 0000   .word 0x00000000
120000150:  47f0 0401   bis zero, r16, r1
120000154:  4c22 3403   mulq r1, 17, r3
120000158:  23de fff0   lda sp, -16(sp)
12000015c:  47f1 0402   bis zero, r17, r2
120000160:  b75e 0000   stq ra, 0(sp)
120000164:  4062 0403   addq r3, r2, r3
120000168:  b53e 0008   stq r9, 8(sp)
12000016c:  47e3 0409   bis zero, r3, r9
120000170:  27bb 2000   ldah gp, 8192(pv)
120000174:  4460 7003   and r3, 3, r3
120000178:  23bd 7eb0   lda gp, 32432(gp)
12000017c:  4060 15a3   cmpeq r3, 0, r3
120000180:  e460 0009   beq r3, 0x1200001a8
120000184:  a77d 8010   ldq pv, -32752(gp)
120000188:  47e2 0410   bis zero, r2, r16
12000018c:  47e1 0411   bis zero, r1, r17
120000190:  6b5b 4000   jsr ra, (pv)
120000194:  47e0 0403   bis zero, r0, r3
120000198:  27ba 2000   ldah gp, 8192(ra)
12000019c:  4123 0403   addq r9, r3, r3
1200001a0:  23bd 7e6c   lda gp, 32364(gp)
1200001a4:  47e3 0409   bis zero, r3, r9
1200001a8:  47e9 0400   bis zero, r9, r0
1200001ac:  a75e 0000   ldq ra, 0(sp)
1200001b0:  a53e 0008   ldq r9, 8(sp)
1200001b4:  23de 0010   lda sp, 16(sp)
1200001b8:  6bfa 8000   ret zero, (ra)
1200001bc:  0000 0000   .word 0x00000000
1200001c0:  23de ffe0   lda sp, -32(sp)
1200001c4:  b75e 0000   stq ra, 0(sp)
1200001c8:  b53e 0008   stq r9, 8(sp)
1200001cc:  b55e 0010   stq r10, 16(sp)
1200001d0:  47ff 0409   bis zero, zero, r9
1200001d4:  27bb 2000   ldah gp, 8192(pv)
1200001d8:  47ff 0409   bis zero, zero, r9
1200001dc:  23bd 7e40   lda gp, 32320(gp)
1200001e0:  b57e 0018   stq r11, 24(sp)
1200001e4:  215f 0001   lda r10, 1(zero)
1200001e8:  4121 99a1   cmplt r9, 12, r1
1200001ec:  e420 0019   beq r1, 0x120000254
1200001f0:  273f 0001   ldah r25, 1(zero)
1200001f4:  2339 ffff   lda r25, -1(r25)
1200001f8:  a77d 8010   ldq pv, -32752(gp)
1200001fc:  4559 0001   and r10, r25, r1
120000200:  47e9 0410   bis zero, r9, r16
120000204:  47e1 0411   bis zero, r1, r17
120000208:  6b5b 4000   jsr ra, (pv)
12000020c:  27ba 2000   ldah gp, 8192(ra)
120000210:  47e0 0401   bis zero, r0, r1
120000214:  23bd 7df4   lda gp, 32244(gp)
120000218:  4141 040b   addq r10, r1, r11
12000021c:  a77d 8018   ldq pv, -32744(gp)
120000220:  457f f001   and r11, 255, r1
120000224:  47eb 040a   bis zero, r11, r10
120000228:  47e1 0410   bis zero, r1, r16
12000022c:  47e9 0411   bis zero, r9, r17
120000230:  6b5b 4000   jsr ra, (pv)
120000234:  47e0 0401   bis zero, r0, r1
120000238:  4561 0801   xor r11, r1, r1
12000023c:  47e1 040a   bis zero, r1, r10
120000240:  27ba 2000   ldah gp, 8192(ra)
120000244:  4120 3401   addq r9, 1, r1
120000248:  23bd 7dcc   lda gp, 32204(gp)
12000024c:  47e1 0409   bis zero, r1, r9
120000250:  c3ff ffe5   br zero, 0x1200001e8
120000254:  273f 0001   ldah r25, 1(zero)
120000258:  2339 ffff   lda r25, -1(r25)
12000025c:  4559 0001   and r10, r25, r1
120000260:  a75e 0000   ldq ra, 0(sp)
120000264:  a53e 0008   ldq r9, 8(sp)
120000268:  a55e 0010   ldq r10, 16(sp)
12000026c:  a57e 0018   ldq r11, 24(sp)
120000270:  47e1 0400   bis zero, r1, r0
120000274:  23de 0020   lda sp, 32(sp)
120000278:  6bfa 8000   ret zero, (ra)
