//! The LITUSE completeness contract: OM's nullification rewrites every use
//! of an address load, so it is only sound if the compiler's LITUSE records
//! are complete — every instruction consuming an address-load result either
//! carries a LITUSE mark or the load is self-marked escaping.
//!
//! This test verifies the contract over real compiled workloads by register
//! dataflow: walk each procedure, track which registers currently hold an
//! address-load result, and demand that any reader is marked.

use om_alpha::{Effects, Reg};
use om_core::analysis::use_index;
use om_core::sym::{translate, SMark};
use om_linker::{build_symbol_table, select_modules};
use om_workloads::build::{build, CompileMode};
use om_workloads::spec;

#[test]
fn every_address_load_use_is_marked() {
    for name in ["compress", "spice", "tomcatv"] {
        let s = spec::quick(&spec::by_name(name).unwrap());
        let built = build(&s, CompileMode::Each).unwrap();
        let mut objects = built.objects.clone();
        for lib in built.libs.iter() {
            for m in lib.members() {
                objects.push(m.clone());
            }
        }
        let modules = select_modules(&objects, &[]).unwrap();
        let symtab = build_symbol_table(&modules).unwrap();
        let program = translate(&modules, &symtab).unwrap();

        for m in &program.modules {
            for p in &m.procs {
                let uses = use_index(p);
                // reg -> id of the load whose result it currently holds.
                let mut holds: [Option<u32>; 32] = [None; 32];
                for (k, i) in p.insts.iter().enumerate() {
                    let e = Effects::of(&i.inst);
                    // Check reads of tracked registers.
                    for r in 0..31u8 {
                        if e.int_uses & (1 << r) == 0 {
                            continue;
                        }
                        let Some(load) = holds[r as usize] else { continue };
                        let marked = matches!(
                            i.mark,
                            SMark::LituseBase { load: l }
                            | SMark::LituseJsr { load: l }
                            | SMark::LituseAddr { load: l } if l == load
                        );
                        let load_escapes = p
                            .insts
                            .iter()
                            .find(|x| x.id == load)
                            .map(|x| matches!(x.mark, SMark::Literal { escaping: true, .. }))
                            .unwrap_or(false);
                        assert!(
                            marked || load_escapes,
                            "{name}/{}: instruction {} ({}) reads r{r} holding load {} without a LITUSE",
                            p.name,
                            k,
                            i.inst,
                            load
                        );
                    }
                    // Update tracking: defs overwrite; address loads start.
                    for r in 0..31u8 {
                        if e.int_defs & (1 << r) != 0 {
                            holds[r as usize] = None;
                        }
                    }
                    if let SMark::Literal { .. } = i.mark {
                        let rd = om_core::analysis::load_dest(i);
                        if !rd.is_zero() {
                            holds[rd.number() as usize] = Some(i.id);
                        }
                    }
                    // Control transfers invalidate straight-line tracking
                    // (values may flow around, but our codegen never carries
                    // address-load results across block boundaries through
                    // scratch registers; clearing keeps the check sound).
                    if e.control {
                        holds = [None; 32];
                    }
                }
                let _ = uses;
                let _ = Reg::ZERO;
            }
        }
    }
}
