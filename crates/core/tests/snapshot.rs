//! Golden-file disassembly snapshots: a tiny fixed multi-module program is
//! linked at every OM level (plus the profile-guided variant) and the text
//! segment's exact disassembly is compared against a committed golden file.
//!
//! Where the verifier sweep proves invariants, these snapshots pin the
//! *artifact*: any change to instruction selection, an OM transformation,
//! scheduling, alignment, or layout shows up as a concrete diff that must be
//! reviewed and re-blessed — silent codegen drift cannot land.
//!
//! To re-bless after an intended change:
//!
//! ```text
//! OM_BLESS=1 cargo test -p om-core --test snapshot
//! ```

use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_objfile::Module;
use om_sim::{run_image, run_profiled};
use std::path::PathBuf;

/// Module `alpha`: a global array, a local (static) helper with a loop
/// (backward-branch target), an exported entry that calls it, and a cold
/// error path whose loop never executes — address loads, a GAT slot, an
/// intra-module BSR, a local symbol name, and (for the PGO snapshot) a
/// procedure that hot-first reordering must sink and a backward-branch
/// target that loses its alignment claim.
const SRC_ALPHA: &str = "\
int ga[8];

static int rare(int x) {
  int i = 0;
  int s = x;
  for (i = 0; i < 9; i = i + 1) { s = s * 3 + ga[i & 7]; }
  return s;
}

static int twiddle(int x) {
  int i = 0;
  int s = x;
  for (i = 0; i < 5; i = i + 1) {
    ga[i & 7] = s + i;
    s = s + ga[(s >> 1) & 7];
  }
  return s;
}

int astep(int a, int b) {
  int t = twiddle(a * 3 + b) ^ (a << 2);
  if ((a & 0xFF) == 77) { t = t + rare(b); }
  return t;
}
";

/// Module `beta`: a second compilation unit so the link crosses module
/// boundaries (JSR→BSR conversion, cross-module GP handling).
const SRC_BETA: &str = "\
extern int astep(int, int);

int bmix(int a, int b) {
  int t = a * 17 + b;
  if ((t & 3) == 0) { t = t + astep(b, a); }
  return t;
}
";

const SRC_MAIN: &str = "\
extern int astep(int, int);
extern int bmix(int, int);

int main() {
  int i = 0;
  int t = 1;
  for (i = 0; i < 12; i = i + 1) {
    t = t + astep(i, t & 0xFFFF);
    t = t ^ bmix(t & 255, i);
  }
  return t & 0xFFFF;
}
";

fn objects() -> Vec<Module> {
    let opts = om_codegen::CompileOpts::o2();
    vec![
        om_codegen::crt0::module().expect("crt0"),
        om_codegen::compile_source("alpha", SRC_ALPHA, &opts).expect("alpha"),
        om_codegen::compile_source("beta", SRC_BETA, &opts).expect("beta"),
        om_codegen::compile_source("snapmain", SRC_MAIN, &opts).expect("snapmain"),
    ]
}

fn disasm(image: &om_linker::Image) -> String {
    let text = &image.segments[0];
    om_alpha::disasm::section(text.base, &text.bytes)
}

/// Compares `actual` against `tests/golden/<name>`, or rewrites the golden
/// file when `OM_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("OM_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{name}: {e}\n(golden file missing? bless with OM_BLESS=1 cargo test -p om-core --test snapshot)")
    });
    if expected != actual {
        let diff = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(k, (e, a))| format!("first diff at line {}:\n  golden: {e}\n  actual: {a}", k + 1))
            .unwrap_or_else(|| {
                format!(
                    "one is a prefix of the other ({} vs {} lines)",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "{name}: disassembly drifted from golden snapshot\n{diff}\n\
             (intended? re-bless with OM_BLESS=1 cargo test -p om-core --test snapshot)"
        );
    }
}

#[test]
fn disassembly_matches_golden_at_every_level() {
    let objects = objects();
    let options = OmOptions { verify: true, ..OmOptions::default() };
    let mut checksum = None;
    for (level, name) in [
        (OmLevel::None, "snap_none.s"),
        (OmLevel::Simple, "snap_simple.s"),
        (OmLevel::Full, "snap_full.s"),
        (OmLevel::FullSched, "snap_full_sched.s"),
    ] {
        let out = optimize_and_link_with(&objects, &[], level, &options)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        check_golden(name, &disasm(&out.image));
        // All levels must also agree on what the program computes.
        let r = run_image(&out.image, 1_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
        match checksum {
            None => checksum = Some(r.result),
            Some(c) => assert_eq!(r.result, c, "{name}: checksum drifted"),
        }
    }
}

#[test]
fn pgo_disassembly_matches_golden() {
    let objects = objects();
    let options = OmOptions { verify: true, ..OmOptions::default() };
    let sched = optimize_and_link_with(&objects, &[], OmLevel::FullSched, &options)
        .expect("sched link");
    let (reference, profile) = run_profiled(&sched.image, 1_000_000).expect("profile run");
    let popts = OmOptions { profile: Some(profile), ..options };
    let out = optimize_and_link_with(&objects, &[], OmLevel::FullSched, &popts)
        .expect("pgo link");
    check_golden("snap_pgo.s", &disasm(&out.image));
    let r = run_image(&out.image, 1_000_000).expect("pgo run");
    assert_eq!(r.result, reference.result, "pgo relink changed the checksum");
}
