//! Unit tests of OM's symbolic machinery: translation, emit-back round
//! trips, call-site recognition, address-taken analysis, prologue
//! restoration, and deletion with branch retargeting.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::analysis::{address_taken, call_sites, find_entry_pair, use_index, CallKind, UseKind};
use om_core::sym::{emit_all, translate, GlobalRef, SMark, SymProgram};
use om_linker::{build_symbol_table, select_modules};
use om_objfile::Module;
use std::collections::HashSet;

fn symbolic(sources: &[(&str, &str)]) -> (SymProgram, Vec<Module>) {
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module().unwrap()];
    for (n, s) in sources {
        objects.push(compile_source(n, s, &opts).unwrap());
    }
    let modules = select_modules(&objects, &[]).unwrap();
    let symtab = build_symbol_table(&modules).unwrap();
    let program = translate(&modules, &symtab).unwrap();
    (program, modules)
}

#[test]
fn translate_emit_roundtrip_is_identity_on_code() {
    let (program, modules) = symbolic(&[(
        "m",
        "int g; int work[8];
         static int helper(int x) { return x * 3; }
         int touch(int i) { work[i & 7] = g + helper(i); return work[i & 7]; }
         int main() { int i = 0; for (i = 0; i < 5; i = i + 1) { g = g + touch(i); } return g; }",
    )]);
    let emitted = emit_all(&program).unwrap();
    assert_eq!(modules.len(), emitted.len());
    for (orig, back) in modules.iter().zip(&emitted) {
        assert_eq!(orig.text, back.text, "text of `{}` must round-trip", orig.name);
        assert_eq!(orig.lita, back.lita, "GAT of `{}` must round-trip", orig.name);
        assert_eq!(orig.data, back.data);
        assert_eq!(orig.sdata, back.sdata);
        // Relocation multisets match (ordering canonicalized by emit).
        assert_eq!(orig.relocs.len(), back.relocs.len(), "`{}`", orig.name);
        for r in &orig.relocs {
            assert!(back.relocs.contains(r), "`{}` lost {r}", orig.name);
        }
    }
}

#[test]
fn call_sites_are_recognized_with_their_resets() {
    let (program, _) = symbolic(&[
        (
            "m",
            "extern int ext(int);
             static int near(int x) { return x + 1; }
             fnptr h;
             int main() { h = &ext; return ext(1) + near(2) + h(3); }",
        ),
        ("other", "int ext(int x) { return x * 2; }"),
    ]);
    // main is in module 1 (after crt0).
    let main = program.modules[1]
        .procs
        .iter()
        .find(|p| p.name == "main")
        .unwrap();
    let sites = call_sites(main);
    let mut direct = 0;
    let mut bsr = 0;
    let mut indirect = 0;
    for s in &sites {
        match s.kind {
            CallKind::DirectJsr { .. } => {
                direct += 1;
                assert!(s.gp_reset.is_some(), "conservative calls reset GP");
            }
            CallKind::Bsr { .. } => {
                bsr += 1;
                assert!(s.gp_reset.is_none(), "compiler BSRs have no reset");
            }
            CallKind::Indirect => {
                indirect += 1;
                assert!(s.gp_reset.is_some());
            }
        }
    }
    assert_eq!((direct, bsr, indirect), (1, 1, 1), "{sites:?}");
}

#[test]
fn address_taken_covers_fnptr_sources() {
    let (program, _) = symbolic(&[(
        "m",
        "int f1(int x) { return x; }
         int f2(int x) { return x + 1; }
         int f3(int x) { return x + 2; }
         fnptr init = &f1;
         fnptr dyn_;
         int main() { dyn_ = &f2; return init(1) + dyn_(2) + f3(3); }",
    )]);
    let taken = address_taken(&program);
    let name_of = |r: &GlobalRef| match r {
        GlobalRef::Def { module, sym } => {
            program.modules[*module].source.symbol(*sym).name.clone()
        }
        GlobalRef::Common { name } => name.clone(),
    };
    let names: HashSet<String> = taken.iter().map(name_of).collect();
    assert!(names.contains("f1"), "data initializer: {names:?}");
    assert!(names.contains("f2"), "&f2 in code: {names:?}");
    assert!(!names.contains("f3"), "f3 only directly called: {names:?}");
    assert!(names.contains("__start"), "entry is pinned: {names:?}");
}

#[test]
fn use_index_links_loads_to_their_consumers() {
    let (program, _) = symbolic(&[(
        "m",
        "int g; int a[4];
         int main(){ int i = g; a[i & 3] = i; return a[0]; }",
    )]);
    let main = program.modules[1]
        .procs
        .iter()
        .find(|p| p.name == "main")
        .unwrap();
    let uses = use_index(main);
    // Every literal load has at least one recorded use, and kinds are sane.
    let mut base = 0;
    let mut addr = 0;
    for i in &main.insts {
        if let SMark::Literal { escaping, .. } = i.mark {
            let us = uses.get(&i.id).cloned().unwrap_or_default();
            assert!(!us.is_empty() || escaping, "dangling literal {}", i.id);
            for (_, k) in us {
                match k {
                    UseKind::Base => base += 1,
                    UseKind::Addr => addr += 1,
                    UseKind::Jsr => {}
                }
            }
        }
    }
    assert!(base >= 2, "scalar + const-index array uses are rewritable");
    assert!(addr >= 1, "dynamic-index array use is address arithmetic");
}

#[test]
fn restore_prologues_brings_scheduled_pairs_home() {
    let (mut program, _) = symbolic(&[(
        "m",
        "int g;
         int busy(int a, int b) {
           int x = a * 2 + b;
           int y = x * 3 - a;
           g = g + x + y;
           return x ^ y;
         }
         int main() { return busy(1, 2); }",
    )]);
    // Find a proc whose pair was scheduled off the entry.
    let displaced: Vec<(usize, usize)> = program
        .modules
        .iter()
        .enumerate()
        .flat_map(|(mi, m)| {
            m.procs.iter().enumerate().filter_map(move |(pi, p)| {
                find_entry_pair(p).filter(|&(hi, lo)| !(hi == 0 && lo == 1)).map(|_| (mi, pi))
            })
        })
        .collect();
    om_core::full::restore_prologues(&mut program);
    for (mi, pi) in &displaced {
        let p = &program.modules[*mi].procs[*pi];
        let (hi, lo) = find_entry_pair(p).unwrap();
        assert_eq!((hi, lo), (0, 1), "pair restored in {}", p.name);
    }
    // Restoration is semantics-preserving structurally: emit must validate.
    for m in emit_all(&program).unwrap() {
        m.validate().unwrap();
    }
}

#[test]
fn delete_retargets_branches() {
    let (mut program, _) = symbolic(&[(
        "m",
        "int g;
         int main() {
           int i = 0;
           for (i = 0; i < 4; i = i + 1) { g = g + i; }
           return g;
         }",
    )]);
    let p = program.modules[1]
        .procs
        .iter_mut()
        .find(|p| p.name == "main")
        .unwrap();
    // Find a branch target and delete the instruction right at it; the
    // branch must retarget to the next survivor.
    let target = p
        .insts
        .iter()
        .find_map(|i| match i.mark {
            SMark::BrLocal { target } => Some(target),
            _ => None,
        })
        .expect("loop has a branch");
    let idx = p.index_of(target);
    let next_id = p.insts[idx + 1].id;
    let doomed: HashSet<_> = [target].into_iter().collect();
    p.delete(&doomed);
    let still: Vec<_> = p
        .insts
        .iter()
        .filter_map(|i| match i.mark {
            SMark::BrLocal { target } => Some(target),
            _ => None,
        })
        .collect();
    assert!(
        still.iter().all(|t| *t != target),
        "no branch may reference the deleted id"
    );
    assert!(
        still.contains(&next_id),
        "some branch now targets the survivor {next_id}: {still:?}"
    );
}
