//! The reproduction's central correctness property: a program must compute
//! exactly the same result under the standard link and under every OM level
//! — OM's transformations are semantics-preserving by construction, and this
//! suite enforces it end to end (compile → OM → link → simulate).

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::{optimize_and_link, OmLevel};
use om_linker::Linker;
use om_objfile::Module;
use om_sim::run_image;

const STEPS: u64 = 10_000_000;

const DIV_SRC: &str = "
    int __divq(int a, int b) {
        if (b == 0) { return 0; }
        if (a == 0x8000000000000000) {
            // Split MIN (which cannot be negated) into halves.
            int q2 = __divq(a >> 1, b);
            int r2 = (a >> 1) - q2 * b;
            return q2 * 2 + __divq(r2 * 2, b);
        }
        if (b == 0x8000000000000000) { return 0; }
        int neg = 0;
        if (a < 0) { a = 0 - a; neg = 1 - neg; }
        if (b < 0) { b = 0 - b; neg = 1 - neg; }
        int q = 0;
        if (b > 0x4000000000000000) {
            if (a >= b) { q = 1; }
            if (neg) { return 0 - q; }
            return q;
        }
        int r = 0;
        int i = 62;
        for (i = 62; i >= 0; i = i - 1) {
            r = (r << 1) | ((a >> i) & 1);
            if (r >= b) { r = r - b; q = q + (1 << i); }
        }
        if (neg) { return 0 - q; }
        return q;
    }
    int __remq(int a, int b) {
        if (b == 0) { return a; }
        return a - __divq(a, b) * b;
    }";

fn objects(sources: &[(&str, &str)]) -> Vec<Module> {
    let mut v = vec![crt0::module().unwrap()];
    for (n, s) in sources {
        v.push(compile_source(n, s, &CompileOpts::o2()).unwrap());
    }
    v.push(compile_source("divmod", DIV_SRC, &CompileOpts::o2()).unwrap());
    v
}

/// Runs under the standard linker and all four OM levels; all five results
/// must agree. Returns the stats of (simple, full).
fn check(sources: &[(&str, &str)]) -> (om_core::OmStats, om_core::OmStats) {
    let objs = objects(sources);
    let mut linker = Linker::new();
    for o in objs.clone() {
        linker = linker.object(o);
    }
    let (image, _) = linker.link().unwrap();
    let baseline = run_image(&image, STEPS).unwrap();

    let mut out = Vec::new();
    for level in [OmLevel::None, OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
        let o = optimize_and_link(&objs, &[], level)
            .unwrap_or_else(|e| panic!("{}: {e}", level.name()));
        let r = run_image(&o.image, STEPS)
            .unwrap_or_else(|e| panic!("{}: run: {e}", level.name()));
        assert_eq!(
            r.result,
            baseline.result,
            "result mismatch at {}",
            level.name()
        );
        assert_eq!(r.output, baseline.output, "output mismatch at {}", level.name());
        out.push(o.stats);
    }
    (out[1], out[2])
}

#[test]
fn straight_line_with_globals() {
    let (simple, full) = check(&[(
        "m",
        "int a; int b; int c;
         int main() { a = 3; b = a * 7; c = b - a; return a + b + c; }",
    )]);
    assert!(simple.addr_loads_nullified > 0, "{simple:?}");
    assert!(full.insts_deleted > 0, "{full:?}");
}

#[test]
fn loops_over_arrays() {
    check(&[(
        "m",
        "int data[64]; int sums[8];
         int main() {
           int i = 0;
           for (i = 0; i < 64; i = i + 1) { data[i] = i * 3 - 7; }
           for (i = 0; i < 64; i = i + 1) { sums[i % 8] = sums[i % 8] + data[i]; }
           int s = 0;
           for (i = 0; i < 8; i = i + 1) { s = s + sums[i] * (i + 1); }
           return s;
         }",
    )]);
}

#[test]
fn cross_module_calls_and_library() {
    let (simple, full) = check(&[
        (
            "main",
            "extern int transform(int); extern int finish(int);
             int acc;
             int main() {
               int i = 0;
               for (i = 0; i < 25; i = i + 1) { acc = acc + transform(i); }
               return finish(acc);
             }",
        ),
        (
            "lib1",
            "extern int finish(int);
             static int scale(int x) { return x * 5; }
             int transform(int x) { return scale(x) + x / 3; }",
        ),
        ("lib2", "int finish(int x) { return x % 10007; }"),
    ]);
    // OM-full must strictly beat OM-simple on bookkeeping removal.
    assert!(full.calls_pv_after <= simple.calls_pv_after);
    assert!(full.calls_pv_after < full.calls_pv_before, "{full:?}");
    assert_eq!(full.calls_gp_reset_after, 0, "single-GAT program: {full:?}");
}

#[test]
fn floats_and_constant_pool() {
    check(&[(
        "m",
        "float series[16];
         int main() {
           int i = 0;
           float x = 1.0;
           for (i = 0; i < 16; i = i + 1) { series[i] = x; x = x * 1.25 + 0.125; }
           float s = 0.0;
           for (i = 0; i < 16; i = i + 1) { s = s + series[i]; }
           return int(s * 1000.0);
         }",
    )]);
}

#[test]
fn procedure_variables_block_pv_removal() {
    let (_, full) = check(&[(
        "m",
        "int inc(int x) { return x + 1; }
         int dec(int x) { return x - 1; }
         fnptr op;
         int main() {
           op = &inc;
           int a = op(10);
           op = &dec;
           int b = op(10);
           return a * 100 + b;
         }",
    )]);
    // The two indirect calls keep their PV use forever.
    assert!(full.calls_indirect >= 2);
    assert!(full.calls_pv_after >= full.calls_indirect, "{full:?}");
}

#[test]
fn recursion_survives_prologue_removal() {
    check(&[(
        "m",
        "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
         int main() { return fib(18); }",
    )]);
}

#[test]
fn deep_call_chains_with_state() {
    check(&[
        (
            "a",
            "extern int b1(int);
             int g1; int g2;
             int main() {
               g1 = 5; g2 = 7;
               int r = b1(g1 + g2);
               return r + g1 * g2;
             }",
        ),
        (
            "b",
            "extern int c1(int);
             int h1;
             int b1(int x) { h1 = x * 2; return c1(h1) + h1; }",
        ),
        (
            "c",
            "int c1(int x) { int i = 0; int s = 0; for (i = 0; i < x; i = i + 1) { s = s + i; } return s % 1000; }",
        ),
    ]);
}

#[test]
fn gat_reduction_only_under_full() {
    let (simple, full) = check(&[(
        "m",
        "int a; int b; int c; int d; int e;
         int main() { a=1; b=2; c=3; d=4; e=5; return a+b+c+d+e; }",
    )]);
    assert_eq!(
        simple.gat_slots_after, simple.gat_slots_before,
        "OM-simple must not reduce the GAT: {simple:?}"
    );
    assert!(
        full.gat_slots_after < full.gat_slots_before,
        "OM-full must reduce the GAT: {full:?}"
    );
}

#[test]
fn stats_are_consistent() {
    let (simple, full) = check(&[(
        "m",
        "int x[32]; int y;
         static int helper(int i) { y = y + i; return y; }
         int main() {
           int i = 0;
           for (i = 0; i < 32; i = i + 1) { x[i] = helper(i); }
           return x[31];
         }",
    )]);
    for s in [simple, full] {
        assert!(s.addr_loads_converted + s.addr_loads_nullified <= s.addr_loads_total);
        assert!(s.calls_pv_after <= s.calls_pv_before);
        assert!(s.calls_gp_reset_after <= s.calls_gp_reset_before);
        assert!(s.insts_before > 0);
    }
    assert!(full.inst_fraction_removed() >= simple.inst_fraction_removed());
}

#[test]
fn write_int_order_preserved() {
    check(&[(
        "m",
        "extern int __write_int(int);
         int main() {
           int i = 0;
           for (i = 0; i < 5; i = i + 1) { __write_int(i * i); }
           return 0;
         }",
    )]);
}
