//! Unit tests of `om_core::pgo`'s conservative fallback: a procedure the
//! profile does not know — or whose backward-target count disagrees with the
//! profiled code (the code changed since profiling) — must fall back to the
//! paper's blind align-everything behavior, never to a partial or panicking
//! application of stale ranks.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::pgo::{proc_key, run_with};
use om_core::profile::ProcProfile;
use om_core::resched::backward_target_ids;
use om_core::sym::{translate, SymProgram};
use om_core::{OmStats, Profile};
use om_linker::{build_symbol_table, select_modules};
use om_objfile::Visibility;

/// Two-loop `main` (two backward-branch targets) plus a single-loop helper.
const SRC: &str = "int g;
int helper(int n) {
  int i = 0;
  while (i < n) { g = g + i; i = i + 1; }
  return g;
}
int main() {
  int i = 0;
  int s = 0;
  for (i = 0; i < 6; i = i + 1) { s = s + helper(i); }
  for (i = 0; i < 4; i = i + 1) { s = s + i; }
  return s;
}";

fn translated() -> SymProgram {
    let objects = vec![
        crt0::module().unwrap(),
        compile_source("m", SRC, &CompileOpts::o2()).unwrap(),
    ];
    let modules = select_modules(&objects, &[]).unwrap();
    let symtab = build_symbol_table(&modules).unwrap();
    translate(&modules, &symtab).unwrap()
}

fn profile_with(procs: Vec<ProcProfile>) -> Profile {
    let mut p = Profile { total_insts: 1000, procs, edges: Vec::new() };
    p.normalize();
    p
}

/// Backward-target count of `main` in the translated program.
fn main_targets(program: &SymProgram) -> usize {
    let p = program.modules[1].procs.iter().find(|p| p.name == "main").unwrap();
    backward_target_ids(p).len()
}

/// Total backward targets across every procedure of the program.
fn all_targets(program: &SymProgram) -> usize {
    program
        .modules
        .iter()
        .flat_map(|m| &m.procs)
        .map(|p| backward_target_ids(p).len())
        .sum()
}

#[test]
fn rank_mismatch_falls_back_to_blind_alignment() {
    let mut program = translated();
    let n_main = main_targets(&program);
    let n_all = all_targets(&program);
    assert!(n_main >= 2, "source must give main at least two loops, got {n_main}");

    // The profile knows `main`, but with the wrong number of backward
    // targets — as if the code was edited after profiling. All counts are
    // cold, so *trusting* this profile would align nothing; the mismatch
    // must force the blind path (align everything) for main only.
    let prof = profile_with(vec![ProcProfile {
        name: "main".into(),
        calls: 1,
        insts: 100,
        back_targets: vec![0; n_main + 1],
    }]);
    let mut stats = OmStats::default();
    let opts = om_core::OmOptions::default();
    run_with(&mut program, &mut stats, &prof, &opts);

    // Every target in the program is classified hot (= align): main via the
    // rank-mismatch fallback, every other procedure via the unknown-proc
    // fallback.
    assert_eq!(stats.pgo_targets_hot as usize, n_all);
    assert_eq!(stats.pgo_targets_cold, 0);
}

#[test]
fn unknown_procedure_falls_back_to_blind_alignment() {
    let mut program = translated();
    let n_all = all_targets(&program);

    // The profile exists but knows nothing relevant (wrong names entirely).
    let prof = profile_with(vec![ProcProfile {
        name: "somebody_else".into(),
        calls: 99,
        insts: 4,
        back_targets: vec![7],
    }]);
    let mut stats = OmStats::default();
    run_with(&mut program, &mut stats, &prof, &om_core::OmOptions::default());
    assert_eq!(stats.pgo_targets_hot as usize, n_all);
    assert_eq!(stats.pgo_targets_cold, 0);
}

#[test]
fn matching_cold_profile_is_trusted_not_blindly_aligned() {
    let mut program = translated();
    let n_main = main_targets(&program);

    // Control case: the same shape as the mismatch test but with the
    // *correct* target count — now the all-cold counts must be believed,
    // and main's targets all classify cold.
    let prof = profile_with(vec![ProcProfile {
        name: "main".into(),
        calls: 1,
        insts: 100,
        back_targets: vec![0; n_main],
    }]);
    let mut stats = OmStats::default();
    run_with(&mut program, &mut stats, &prof, &om_core::OmOptions::default());
    assert_eq!(stats.pgo_targets_cold as usize, n_main);
}

#[test]
fn fallback_and_blind_runs_produce_identical_code() {
    // The mismatch fallback must be *exactly* the blind behavior, not an
    // approximation: compare the full instruction stream against a run
    // whose profile is entirely unknown (which also takes the blind path).
    let mut mismatched = translated();
    let n_main = main_targets(&mismatched);
    // `calls: 0` keeps the hot/cold procedure *reordering* identical in
    // both runs, so the comparison isolates the alignment decision.
    let prof_bad = profile_with(vec![ProcProfile {
        name: "main".into(),
        calls: 0,
        insts: 100,
        back_targets: vec![1_000_000; n_main + 2],
    }]);
    let mut stats_a = OmStats::default();
    run_with(&mut mismatched, &mut stats_a, &prof_bad, &om_core::OmOptions::default());

    let mut unknown = translated();
    let prof_none = profile_with(Vec::new());
    let mut stats_b = OmStats::default();
    run_with(&mut unknown, &mut stats_b, &prof_none, &om_core::OmOptions::default());

    let flat = |p: &SymProgram| -> Vec<(String, Vec<om_alpha::Inst>)> {
        p.modules
            .iter()
            .flat_map(|m| &m.procs)
            .map(|p| (p.name.clone(), p.insts.iter().map(|i| i.inst).collect()))
            .collect()
    };
    assert_eq!(flat(&mismatched), flat(&unknown));
    assert_eq!(stats_a.unops_inserted, stats_b.unops_inserted);
}

#[test]
fn proc_key_matches_linker_publishing() {
    assert_eq!(proc_key("main", Visibility::Exported, "m"), "main");
    assert_eq!(proc_key("lp", Visibility::Local, "m"), "lp.m");
}
