//! Cross-crate integration tests: the full toolchain path including the
//! on-disk object format, archives, and every link flavor.

use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::linker::Linker;
use om_repro::minic;
use om_repro::objfile::{binary, Archive};
use om_repro::sim::run_image;

const PROGRAM: &[(&str, &str)] = &[
    (
        "main",
        "extern int poly(int); extern int mean_of(int, int);
         int history[16];
         int main() {
           int i = 0;
           for (i = 0; i < 16; i = i + 1) { history[i] = poly(i); }
           int s = 0;
           for (i = 0; i < 16; i = i + 1) { s = s + history[i]; }
           return mean_of(s, 16);
         }",
    ),
    (
        "mathlib",
        "static int sq(int x) { return x * x; }
         int poly(int x) { return sq(x) * 2 - 3 * x + 11; }
         int mean_of(int total, int n) {
           int acc = 0;
           int k = 0;
           for (k = 0; k < n; k = k + 1) { acc = acc + total; }
           return acc / (n * n);
         }
         int __divq(int a, int b) {
           if (b == 0) { return 0; }
           int neg = 0;
           if (a < 0) { a = 0 - a; neg = 1 - neg; }
           if (b < 0) { b = 0 - b; neg = 1 - neg; }
           int q = 0;
           int r = 0;
           int i = 62;
           for (i = 62; i >= 0; i = i - 1) {
             r = (r << 1) | ((a >> i) & 1);
             if (r >= b) { r = r - b; q = q + (1 << i); }
           }
           if (neg) { return 0 - q; }
           return q;
         }",
    ),
];

fn interp_result() -> i64 {
    minic::interp::run_sources(PROGRAM, 10_000_000).unwrap()
}

#[test]
fn objects_survive_the_on_disk_format_mid_pipeline() {
    // Compile, serialize every object to bytes, read back, then link and run:
    // the binary object format is a faithful interchange format.
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module().unwrap()];
    for (n, s) in PROGRAM {
        objects.push(compile_source(n, s, &opts).unwrap());
    }
    let reread: Vec<_> = objects
        .iter()
        .map(|m| binary::read_module(&binary::write_module(m)).unwrap())
        .collect();
    assert_eq!(objects, reread);

    let mut linker = Linker::new();
    for o in reread {
        linker = linker.object(o);
    }
    let (image, _) = linker.link().unwrap();
    assert_eq!(run_image(&image, 10_000_000).unwrap().result, interp_result());
}

#[test]
fn archives_survive_the_on_disk_format() {
    let opts = CompileOpts::o2();
    let mut ar = Archive::new("libmath");
    ar.add(compile_source("mathlib", PROGRAM[1].1, &opts).unwrap()).unwrap();
    let ar = binary::read_archive(&binary::write_archive(&ar)).unwrap();

    let (image, stats) = Linker::new()
        .object(crt0::module().unwrap())
        .object(compile_source("main", PROGRAM[0].1, &opts).unwrap())
        .library(ar)
        .link()
        .unwrap();
    assert_eq!(stats.modules, 3);
    assert_eq!(run_image(&image, 10_000_000).unwrap().result, interp_result());
}

#[test]
fn om_none_is_a_faithful_passthrough() {
    // OmLevel::None translates to symbolic form and back without transforming:
    // the program must behave identically and retire the same instruction
    // count as the standard link.
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module().unwrap()];
    for (n, s) in PROGRAM {
        objects.push(compile_source(n, s, &opts).unwrap());
    }
    let mut linker = Linker::new();
    for o in objects.clone() {
        linker = linker.object(o);
    }
    let (std_image, _) = linker.link().unwrap();
    let std_run = run_image(&std_image, 10_000_000).unwrap();

    let out = optimize_and_link(&objects, &[], OmLevel::None).unwrap();
    let om_run = run_image(&out.image, 10_000_000).unwrap();
    assert_eq!(om_run.result, std_run.result);
    assert_eq!(om_run.insts, std_run.insts, "pass-through must not change code");
    assert_eq!(out.stats.insts_nullified, 0);
    assert_eq!(out.stats.insts_deleted, 0);
}

#[test]
fn every_om_level_matches_the_interpreter() {
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module().unwrap()];
    for (n, s) in PROGRAM {
        objects.push(compile_source(n, s, &opts).unwrap());
    }
    let expected = interp_result();
    for level in [OmLevel::None, OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
        let out = optimize_and_link(&objects, &[], level).unwrap();
        let r = run_image(&out.image, 10_000_000).unwrap();
        assert_eq!(r.result, expected, "{}", level.name());
    }
}

#[test]
fn om_outputs_are_deterministic() {
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module().unwrap()];
    for (n, s) in PROGRAM {
        objects.push(compile_source(n, s, &opts).unwrap());
    }
    let a = optimize_and_link(&objects, &[], OmLevel::Full).unwrap();
    let b = optimize_and_link(&objects, &[], OmLevel::Full).unwrap();
    assert_eq!(a.image.segments[0].bytes, b.image.segments[0].bytes);
    assert_eq!(a.image.segments[1].bytes, b.image.segments[1].bytes);
    assert_eq!(a.stats, b.stats);
}
