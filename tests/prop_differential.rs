//! Property-based differential testing: random mini-C programs must compute
//! identical results in the reference interpreter and on the simulator after
//! every OM level. This is the broadest net for codegen, linker, and OM bugs
//! — any semantics-changing transformation shows up as a checksum mismatch
//! (or a simulator fault) on some generated program.

use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::minic::interp::run_sources;
use om_repro::sim::run_image;
use proptest::prelude::*;

/// A random integer expression over `a`, `b`, `acc`, globals `g0..g3`, and
/// array `tab` (length 16).
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("acc".to_string()),
        (0u8..4).prop_map(|g| format!("g{g}")),
        (-64i64..64).prop_map(|k| format!("{k}")),
        any::<u8>().prop_map(|k| format!("tab[{}]", k % 16)),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0u8..10).prop_map(|(l, r, op)| {
                let op = match op {
                    0 => "+",
                    1 => "-",
                    2 => "*",
                    3 => "&",
                    4 => "|",
                    5 => "^",
                    6 => "/",
                    7 => "%",
                    8 => "<",
                    _ => "==",
                };
                format!("({l} {op} {r})")
            }),
            (inner.clone(), 1u8..8).prop_map(|(l, s)| format!("({l} >> {s})")),
            (inner.clone(), 1u8..8).prop_map(|(l, s)| format!("({l} << {s})")),
            inner.clone().prop_map(|l| format!("(-{l})")),
            inner.clone().prop_map(|l| format!("(!{l})")),
            inner.clone().prop_map(|l| format!("helper({l}, b)")),
        ]
    })
    .boxed()
}

/// A random statement body for `work`.
fn body() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            expr(2).prop_map(|e| format!("acc = {e};")),
            (0u8..4, expr(2)).prop_map(|(g, e)| format!("g{g} = {e};")),
            (any::<u8>(), expr(2)).prop_map(|(i, e)| format!("tab[{}] = {e};", i % 16)),
            (expr(1), expr(1)).prop_map(|(c, e)| {
                format!("if ({c}) {{ acc = acc + {e}; }} else {{ acc = acc - 1; }}")
            }),
            expr(1).prop_map(|e| format!(
                "{{ }} int z = {e}; while (z > 0) {{ acc = acc + z; z = z - 7; }}"
            )),
        ],
        1..8,
    )
    .prop_map(|stmts| {
        // The placeholder `{ }` block is not valid mini-C; strip it (it only
        // existed to make the while-loop arm a single string).
        stmts
            .into_iter()
            .map(|s| s.replace("{ } ", ""))
            .collect::<Vec<_>>()
            .join("\n  ")
    })
}

fn program(body: &str) -> String {
    format!(
        "int g0; int g1; int g2 = 9; int g3;
         int tab[16];
         int helper(int x, int y) {{ return (x ^ y) + (x >> 3); }}
         static int work(int a, int b) {{
           int acc = a * 2 + b;
           {body}
           return acc;
         }}
         int __divq(int a, int b) {{
           if (b == 0) {{ return 0; }}
           if (a == 0x8000000000000000) {{
             int q2 = __divq(a >> 1, b);
             int r2 = (a >> 1) - q2 * b;
             return q2 * 2 + __divq(r2 * 2, b);
           }}
           if (b == 0x8000000000000000) {{ return 0; }}
           int neg = 0;
           if (a < 0) {{ a = 0 - a; neg = 1 - neg; }}
           if (b < 0) {{ b = 0 - b; neg = 1 - neg; }}
           int q = 0;
           if (b > 0x4000000000000000) {{
             if (a >= b) {{ q = 1; }}
             if (neg) {{ return 0 - q; }}
             return q;
           }}
           int r = 0;
           int i = 62;
           for (i = 62; i >= 0; i = i - 1) {{
             r = (r << 1) | ((a >> i) & 1);
             if (r >= b) {{ r = r - b; q = q + (1 << i); }}
           }}
           if (neg) {{ return 0 - q; }}
           return q;
         }}
         int __remq(int a, int b) {{
           if (b == 0) {{ return a; }}
           return a - __divq(a, b) * b;
         }}
         int main() {{
           int t = 0;
           int i = 0;
           for (i = 0; i < 6; i = i + 1) {{ t = t + work(i, t & 1023); }}
           return t;
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_agree_across_all_om_levels(b in body()) {
        let src = program(&b);
        // The interpreter defines the expected behavior. Programs that fail
        // to terminate in budget are discarded (the while-loop arm can
        // occasionally run long on huge values).
        let expected = match run_sources(&[("t", &src)], 3_000_000) {
            Ok(v) => v,
            Err(e) if e.contains("step limit") => return Ok(()),
            Err(e) => panic!("interp rejected generated program: {e}\n{src}"),
        };

        let obj = compile_source("t", &src, &CompileOpts::o2())
            .unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
        let objects = vec![crt0::module().unwrap(), obj];

        for level in [OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
            let out = optimize_and_link(objects.clone(), &[], level)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", level.name()));
            let r = run_image(&out.image, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", level.name()));
            prop_assert_eq!(r.result, expected, "{} on\n{}", level.name(), src);
        }
    }
}
