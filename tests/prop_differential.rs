//! Property-based differential testing: random mini-C programs must compute
//! identical results in the reference interpreter and on the simulator after
//! every OM level. This is the broadest net for codegen, linker, and OM bugs
//! — any semantics-changing transformation shows up as a checksum mismatch
//! (or a simulator fault) on some generated program.
//!
//! Seeded randomized cases over `om_prng` (the workspace builds offline, so
//! no proptest); a failing case prints the full generated source.

use om_prng::StdRng;
use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::minic::interp::run_sources;
use om_repro::sim::run_image;

/// A random integer expression over `a`, `b`, `acc`, globals `g0..g3`, and
/// array `tab` (length 16).
fn expr(rng: &mut StdRng, depth: u32) -> String {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0u8..6) {
            0 => "a".to_string(),
            1 => "b".to_string(),
            2 => "acc".to_string(),
            3 => format!("g{}", rng.gen_range(0u8..4)),
            4 => format!("{}", rng.gen_range(-64i64..64)),
            _ => format!("tab[{}]", rng.gen_range(0u8..16)),
        };
    }
    match rng.gen_range(0u8..6) {
        0 => {
            let l = expr(rng, depth - 1);
            let r = expr(rng, depth - 1);
            let op = match rng.gen_range(0u8..10) {
                0 => "+",
                1 => "-",
                2 => "*",
                3 => "&",
                4 => "|",
                5 => "^",
                6 => "/",
                7 => "%",
                8 => "<",
                _ => "==",
            };
            format!("({l} {op} {r})")
        }
        1 => format!("({} >> {})", expr(rng, depth - 1), rng.gen_range(1u8..8)),
        2 => format!("({} << {})", expr(rng, depth - 1), rng.gen_range(1u8..8)),
        3 => format!("(-{})", expr(rng, depth - 1)),
        4 => format!("(!{})", expr(rng, depth - 1)),
        _ => format!("helper({}, b)", expr(rng, depth - 1)),
    }
}

/// A random statement body for `work`.
fn body(rng: &mut StdRng) -> String {
    let n = rng.gen_range(1usize..8);
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        stmts.push(match rng.gen_range(0u8..5) {
            0 => format!("acc = {};", expr(rng, 2)),
            1 => format!("g{} = {};", rng.gen_range(0u8..4), expr(rng, 2)),
            2 => format!("tab[{}] = {};", rng.gen_range(0u8..16), expr(rng, 2)),
            3 => format!(
                "if ({}) {{ acc = acc + {}; }} else {{ acc = acc - 1; }}",
                expr(rng, 1),
                expr(rng, 1)
            ),
            _ => format!(
                "int z = {}; while (z > 0) {{ acc = acc + z; z = z - 7; }}",
                expr(rng, 1)
            ),
        });
    }
    stmts.join("\n  ")
}

fn program(body: &str) -> String {
    format!(
        "int g0; int g1; int g2 = 9; int g3;
         int tab[16];
         int helper(int x, int y) {{ return (x ^ y) + (x >> 3); }}
         static int work(int a, int b) {{
           int acc = a * 2 + b;
           {body}
           return acc;
         }}
         int __divq(int a, int b) {{
           if (b == 0) {{ return 0; }}
           if (a == 0x8000000000000000) {{
             int q2 = __divq(a >> 1, b);
             int r2 = (a >> 1) - q2 * b;
             return q2 * 2 + __divq(r2 * 2, b);
           }}
           if (b == 0x8000000000000000) {{ return 0; }}
           int neg = 0;
           if (a < 0) {{ a = 0 - a; neg = 1 - neg; }}
           if (b < 0) {{ b = 0 - b; neg = 1 - neg; }}
           int q = 0;
           if (b > 0x4000000000000000) {{
             if (a >= b) {{ q = 1; }}
             if (neg) {{ return 0 - q; }}
             return q;
           }}
           int r = 0;
           int i = 62;
           for (i = 62; i >= 0; i = i - 1) {{
             r = (r << 1) | ((a >> i) & 1);
             if (r >= b) {{ r = r - b; q = q + (1 << i); }}
           }}
           if (neg) {{ return 0 - q; }}
           return q;
         }}
         int __remq(int a, int b) {{
           if (b == 0) {{ return a; }}
           return a - __divq(a, b) * b;
         }}
         int main() {{
           int t = 0;
           int i = 0;
           for (i = 0; i < 6; i = i + 1) {{ t = t + work(i, t & 1023); }}
           return t;
         }}"
    )
}

#[test]
fn random_programs_agree_across_all_om_levels() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_E2E4);
    for case in 0..48 {
        let src = program(&body(&mut rng));
        // The interpreter defines the expected behavior. Programs that fail
        // to terminate in budget are discarded (the while-loop arm can
        // occasionally run long on huge values).
        let expected = match run_sources(&[("t", &src)], 3_000_000) {
            Ok(v) => v,
            Err(e) if e.contains("step limit") => continue,
            Err(e) => panic!("interp rejected generated program: {e}\n{src}"),
        };

        let obj = compile_source("t", &src, &CompileOpts::o2())
            .unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
        let objects = vec![crt0::module().unwrap(), obj];

        for level in [OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
            let out = optimize_and_link(&objects, &[], level)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", level.name()));
            let r = run_image(&out.image, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", level.name()));
            assert_eq!(r.result, expected, "case {case}: {} on\n{}", level.name(), src);
        }
    }
}
