//! Multi-GAT programs (§2: "for large programs, the global address table may
//! be so large that it cannot be accessed via a single unchanging global
//! pointer").
//!
//! We inflate two modules' literal pools past the 8191-slot group capacity so
//! the linker must split the program into two GP groups, then check:
//!
//! * the standard link still runs correctly (the conservative conventions
//!   exist exactly for this case),
//! * OM-simple must *keep* the GP-reset code across the group boundary,
//! * OM-full's GAT reduction collapses the dead slots, re-unifying the
//!   program into one group and unlocking the full optimization.

use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::linker::{LayoutOpts, Linker};
use om_repro::objfile::Module;
use om_repro::sim::run_image;
use om_repro::workloads::scale::{overflow_slots_per_module, pad_gat};

fn build_program() -> Vec<Module> {
    let opts = CompileOpts::o2();
    let mut main_obj = compile_source(
        "main",
        "extern int far_mix(int);
         int near_g;
         int main() {
           int i = 0;
           for (i = 0; i < 8; i = i + 1) { near_g = near_g + far_mix(near_g + i); }
           return near_g;
         }",
        &opts,
    )
    .unwrap();
    let mut far_obj = compile_source(
        "far",
        "int far_g = 7;
         int far_mix(int x) { far_g = far_g * 3 + 1; return (x ^ far_g) & 0xFFFF; }",
        &opts,
    )
    .unwrap();

    // Each of the two padded modules gets the shared overflow quota, so the
    // pair together is guaranteed to exceed one group's capacity — the same
    // derivation the `--scale` generator uses, so test and generator cannot
    // drift on the 8191-slot boundary.
    let per = overflow_slots_per_module(2);
    pad_gat(&mut main_obj, per, "a");
    pad_gat(&mut far_obj, per, "b");
    vec![crt0::module().unwrap(), main_obj, far_obj]
}

fn expected() -> i64 {
    om_repro::minic::interp::run_sources(
        &[
            (
                "main",
                "extern int far_mix(int);
                 int near_g;
                 int main() {
                   int i = 0;
                   for (i = 0; i < 8; i = i + 1) { near_g = near_g + far_mix(near_g + i); }
                   return near_g;
                 }",
            ),
            (
                "far",
                "int far_g = 7;
                 int far_mix(int x) { far_g = far_g * 3 + 1; return (x ^ far_g) & 0xFFFF; }",
            ),
        ],
        1_000_000,
    )
    .unwrap()
}

#[test]
fn standard_link_splits_groups_and_still_runs() {
    let objects = build_program();
    let mut linker = Linker::new();
    for o in objects {
        linker = linker.object(o);
    }
    let (image, stats) = linker.link().unwrap();
    assert!(stats.gp_groups >= 2, "expected a group split, got {stats:?}");
    assert_eq!(run_image(&image, 10_000_000).unwrap().result, expected());
}

#[test]
fn om_simple_keeps_cross_group_gp_resets() {
    let objects = build_program();
    let out = optimize_and_link(&objects, &[], OmLevel::Simple).unwrap();
    // The call from main's group to far's group must keep its GP reset; the
    // intra-group calls (crt0 → main) lose theirs.
    assert!(
        out.stats.calls_gp_reset_after > 0,
        "cross-group call must keep its GP reset: {:?}",
        out.stats
    );
    assert_eq!(run_image(&out.image, 10_000_000).unwrap().result, expected());
}

#[test]
fn om_full_collapses_dead_slots_back_to_one_group() {
    let objects = build_program();
    let out = optimize_and_link(&objects, &[], OmLevel::Full).unwrap();
    // Padding slots are never referenced, so GAT reduction removes them,
    // the program fits one group again, and no GP reset survives.
    assert_eq!(out.stats.calls_gp_reset_after, 0, "{:?}", out.stats);
    assert!(out.stats.gat_slots_after < 100, "{:?}", out.stats);
    assert_eq!(run_image(&out.image, 10_000_000).unwrap().result, expected());
}

#[test]
fn sorted_commons_layout_is_accepted_at_scale() {
    // Sanity: the OM layout policy handles ~8k commons without pathology.
    let objects = build_program();
    let mut linker = Linker::new().layout_opts(LayoutOpts { sort_commons: true });
    for o in objects {
        linker = linker.object(o);
    }
    let (image, _) = linker.link().unwrap();
    assert_eq!(run_image(&image, 10_000_000).unwrap().result, expected());
}
