//! A tour of the paper's §2 calling conventions and what each OM level does
//! to them — the reproduction of Figures 1 and 2 in executable form.
//!
//! Disassembles a call site and a callee prologue under the standard link,
//! OM-simple, and OM-full, so you can watch the `ldq pv / jsr / ldah gp /
//! lda gp` bookkeeping become a bare BSR.
//!
//! ```text
//! cargo run --example calling_conventions
//! ```

use om_repro::alpha::disasm;
use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::linker::Image;

const SRC: &str = "
    int v;
    int callee(int x) {
        v = v + x;          // a global variable access: GAT load + use
        return v * 2;
    }
    int main() {
        return callee(5) + callee(7) + v;
    }";

fn dump_proc(image: &Image, name: &str, words: usize) {
    let addr = image.symbols[name];
    let text = &image.segments[0];
    let off = (addr - text.base) as usize;
    let end = (off + 4 * words).min(text.bytes.len());
    println!("{name}:");
    print!("{}", disasm::section(addr, &text.bytes[off..end]));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = CompileOpts::o2();
    let objects = vec![crt0::module()?, compile_source("m", SRC, &opts)?];

    for level in [OmLevel::None, OmLevel::Simple, OmLevel::Full] {
        let out = optimize_and_link(&objects, &[], level)?;
        println!("==================== {} ====================", level.name());
        dump_proc(&out.image, "callee", 10);
        println!();
        dump_proc(&out.image, "main", 18);
        let s = out.stats;
        println!(
            "\ncalls: {} total | PV loads {} -> {} | GP resets {} -> {} | JSR->BSR {}\n",
            s.calls_total,
            s.calls_pv_before,
            s.calls_pv_after,
            s.calls_gp_reset_before,
            s.calls_gp_reset_after,
            s.calls_jsr_to_bsr
        );
        let r = om_repro::sim::run_image(&out.image, 100_000)?;
        println!("result = {}\n", r.result);
    }
    Ok(())
}
