//! Quickstart: compile a small two-module program, link it twice — once with
//! the standard linker and once through OM-full — and show what the
//! link-time optimizer did.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::linker::Linker;
use om_repro::sim::run_image;

const MAIN_SRC: &str = "
    extern int scale(int);
    int counter;
    int main() {
        int i = 0;
        for (i = 0; i < 10; i = i + 1) { counter = counter + scale(i); }
        return counter;
    }";

const LIB_SRC: &str = "
    int factor = 3;
    int scale(int x) { return x * factor; }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = CompileOpts::o2();
    let objects = vec![
        crt0::module()?,
        compile_source("main", MAIN_SRC, &opts)?,
        compile_source("lib", LIB_SRC, &opts)?,
    ];

    // Standard link: the baseline the paper measures against.
    let mut linker = Linker::new();
    for o in objects.clone() {
        linker = linker.object(o);
    }
    let (baseline, link_stats) = linker.link()?;
    let base_run = run_image(&baseline, 1_000_000)?;
    println!("standard link: {} modules, GAT {} slots", link_stats.modules, link_stats.gat_slots);
    println!("  result = {}, {} instructions retired", base_run.result, base_run.insts);

    // The same objects through OM-full.
    let out = optimize_and_link(&objects, &[], OmLevel::Full)?;
    let om_run = run_image(&out.image, 1_000_000)?;
    assert_eq!(om_run.result, base_run.result, "OM must preserve semantics");

    let s = out.stats;
    println!("\nOM-full:");
    println!("  result  = {} (identical, as it must be)", om_run.result);
    println!(
        "  address loads: {} total, {} converted, {} nullified",
        s.addr_loads_total, s.addr_loads_converted, s.addr_loads_nullified
    );
    println!(
        "  instructions deleted: {} of {} ({:.1}%)",
        s.insts_deleted,
        s.insts_before,
        100.0 * s.inst_fraction_removed()
    );
    println!(
        "  GAT: {} -> {} slots",
        s.gat_slots_before, s.gat_slots_after
    );
    println!(
        "  dynamic: {} -> {} instructions retired",
        base_run.insts, om_run.insts
    );

    Ok(())
}
