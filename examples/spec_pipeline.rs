//! Run one synthetic SPEC92 benchmark through the whole evaluation pipeline:
//! both compile modes, the standard link, and every OM level, reporting the
//! dynamic improvement the way Figure 6 does.
//!
//! ```text
//! cargo run --release --example spec_pipeline -- spice
//! ```

use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::linker::Linker;
use om_repro::sim::run_timed;
use om_repro::workloads::build::{build, CompileMode};
use om_repro::workloads::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "spice".to_string());
    let Some(spec) = spec::by_name(&name) else {
        eprintln!("unknown benchmark `{name}`; try one of:");
        for s in spec::all() {
            eprint!(" {}", s.name);
        }
        eprintln!();
        std::process::exit(2);
    };

    println!(
        "benchmark {name}: {} modules x {} procs, {} main-loop iterations",
        spec.modules, spec.procs_per_module, spec.iters
    );

    for mode in [CompileMode::Each, CompileMode::All] {
        let built = build(&spec, mode)?;
        let mut linker = Linker::new();
        for o in built.objects.clone() {
            linker = linker.object(o);
        }
        for l in built.libs.iter() {
            linker = linker.library(l.clone());
        }
        let (image, _) = linker.link()?;
        let (base_run, base) = run_timed(&image, 2_000_000_000)?;
        println!(
            "\n{}: checksum {}, baseline {} cycles / {} insts",
            mode.name(),
            base_run.result,
            base.cycles,
            base.insts
        );

        for level in [OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
            let out = optimize_and_link(&built.objects, &built.libs, level)?;
            let (r, t) = run_timed(&out.image, 2_000_000_000)?;
            assert_eq!(r.result, base_run.result, "semantics preserved");
            println!(
                "  {:16} {:>10} cycles  ({:+.2}%)  insts {:>9}  dual-issue {:>5.1}%",
                level.name(),
                t.cycles,
                (base.cycles as f64 / t.cycles as f64 - 1.0) * 100.0,
                t.insts,
                100.0 * t.dual_issued as f64 / t.insts as f64,
            );
        }
    }
    Ok(())
}
