//! Shared-library semantics: the paper's §6 notes that calls to dynamically
//! linked routines cannot be optimized the way statically linked calls can.
//! Mark a symbol preemptible and watch OM leave exactly its bookkeeping
//! alone while optimizing everything else.
//!
//! ```text
//! cargo run --example shared_library
//! ```

use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, optimize_and_link_with, OmLevel, OmOptions};
use om_repro::sim::run_image;

const SRC: &[(&str, &str)] = &[
    (
        "app",
        "extern int codec(int); extern int helper(int);
         int total;
         int main() {
           int i = 0;
           for (i = 0; i < 8; i = i + 1) { total = total + codec(i) + helper(i); }
           return total;
         }",
    ),
    (
        "libcodec",
        "int codec(int x) { return x * 7 + 3; }
         int helper(int x) { return x ^ 0x55; }",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module()?];
    for (n, s) in SRC {
        objects.push(compile_source(n, s, &opts)?);
    }

    let closed = optimize_and_link(&objects, &[], OmLevel::Full)?;
    println!("fully static link (everything optimizable):");
    println!(
        "  PV loads {} -> {}, GP resets {} -> {}, JSR->BSR {}",
        closed.stats.calls_pv_before,
        closed.stats.calls_pv_after,
        closed.stats.calls_gp_reset_before,
        closed.stats.calls_gp_reset_after,
        closed.stats.calls_jsr_to_bsr
    );

    let options = OmOptions {
        preemptible: vec!["codec".to_string()],
        ..OmOptions::default()
    };
    let dynamic = optimize_and_link_with(&objects, &[], OmLevel::Full, &options)?;
    println!("\nwith `codec` marked preemptible (a dynamic-library export):");
    println!(
        "  PV loads {} -> {}, GP resets {} -> {}, JSR->BSR {}",
        dynamic.stats.calls_pv_before,
        dynamic.stats.calls_pv_after,
        dynamic.stats.calls_gp_reset_before,
        dynamic.stats.calls_gp_reset_after,
        dynamic.stats.calls_jsr_to_bsr
    );
    println!(
        "  GAT: {} -> {} slots (codec's slot survives)",
        dynamic.stats.gat_slots_before, dynamic.stats.gat_slots_after
    );

    let a = run_image(&closed.image, 1_000_000)?.result;
    let b = run_image(&dynamic.image, 1_000_000)?.result;
    assert_eq!(a, b);
    println!("\nresults identical in this closed world: {a}");
    Ok(())
}
