//! Inspect the global address table: how the linker merges and deduplicates
//! per-module GATs (§2), and how far OM-full's GAT reduction shrinks the
//! result (§5.1 reports an order of magnitude).
//!
//! ```text
//! cargo run --example inspect_gat
//! ```

use om_repro::codegen::{compile_source, crt0, CompileOpts};
use om_repro::core::{optimize_and_link, OmLevel};
use om_repro::linker::Linker;

/// Three modules that share some globals and procedures: their GATs overlap,
/// so the merged table is smaller than the sum.
const MODS: &[(&str, &str)] = &[
    (
        "alpha",
        "extern int shared_fn(int); extern int shared_g;
         int a1; int a2;
         int alpha_work(int x) { a1 = a1 + x; a2 = a2 ^ shared_g; return shared_fn(a1); }",
    ),
    (
        "beta",
        "extern int shared_fn(int); extern int shared_g;
         int b1;
         int beta_work(int x) { b1 = b1 + shared_g; return shared_fn(b1 + x); }",
    ),
    (
        "gamma",
        "int shared_g = 42;
         int shared_fn(int x) { shared_g = shared_g + 1; return x + shared_g; }
         extern int alpha_work(int); extern int beta_work(int);
         int main() { return alpha_work(1) + beta_work(2); }",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module()?];
    let mut per_module_entries = 0;
    for (name, src) in MODS {
        let m = compile_source(name, src, &opts)?;
        println!("module {name:6}: {} GAT entries", m.lita.len());
        per_module_entries += m.lita.len();
        objects.push(m);
    }
    per_module_entries += objects[0].lita.len();

    let mut linker = Linker::new();
    for o in objects.clone() {
        linker = linker.object(o);
    }
    let (_, stats) = linker.link()?;
    println!(
        "\nstandard link: {} entries across modules -> {} merged slots ({} duplicates removed)",
        per_module_entries,
        stats.gat_slots,
        per_module_entries - stats.gat_slots
    );

    for level in [OmLevel::Simple, OmLevel::Full] {
        let out = optimize_and_link(&objects, &[], level)?;
        println!(
            "{:10}: GAT {} -> {} slots ({:.0}% of original)",
            level.name(),
            out.stats.gat_slots_before,
            out.stats.gat_slots_after,
            100.0 * out.stats.gat_ratio()
        );
    }

    let out = optimize_and_link(&objects, &[], OmLevel::Full)?;
    let r = om_repro::sim::run_image(&out.image, 100_000)?;
    println!("\nprogram result (unchanged by all of this): {}", r.result);
    Ok(())
}
