//! Umbrella crate for the OM link-time-optimization reproduction.
//!
//! Re-exports the workspace crates so the examples and integration tests can
//! use one coherent namespace. See `README.md` for the architecture overview
//! and `DESIGN.md` for the per-experiment index.

pub use om_alpha as alpha;
pub use om_codegen as codegen;
pub use om_core as core;
pub use om_linker as linker;
pub use om_minic as minic;
pub use om_objfile as objfile;
pub use om_sim as sim;
pub use om_workloads as workloads;
