#!/bin/sh
# Full CI gate: build, test, figure-drift check, and a bounded differential
# fuzz campaign. Any step failing fails the script.
#
# Usage: scripts/ci.sh [FUZZ_SEEDS]
#   FUZZ_SEEDS   seeds for the omfuzz campaign (default 200)
set -eu

cd "$(dirname "$0")/.."
seeds="${1:-200}"

echo "== build (release, all targets) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== golden disassembly snapshots =="
cargo test -q -p om-core --test snapshot

echo "== PGO differential sweep (profile -> relink -> re-diff checksums) =="
cargo test -q -p om-core --test verify_all pgo_relink

echo "== figure drift =="
scripts/bench.sh

echo "== differential fuzz ($seeds seeds) =="
cargo run --release -p om-bench --bin omfuzz -- --seeds "$seeds"

echo "CI OK"
