#!/bin/sh
# Full CI gate: build, test, figure-drift check, a bounded differential
# fuzz campaign, and the mutation-kill gate. Any step failing fails the
# script.
#
# Usage: scripts/ci.sh [FUZZ_SEEDS] [MUTANTS]
#   FUZZ_SEEDS   seeds for the omfuzz campaign (default 200)
#   MUTANTS      budget for the omkill campaign (default 120, covering the
#                whole committed corpus; lower it to bound CI time — the
#                corpus is round-robin by class, so a budget cap still
#                touches every class before deepening any)
set -eu

cd "$(dirname "$0")/.."
seeds="${1:-200}"
mutants="${2:-120}"

echo "== build (release, all targets) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== golden disassembly snapshots =="
cargo test -q -p om-core --test snapshot

echo "== PGO differential sweep (profile -> relink -> re-diff checksums) =="
cargo test -q -p om-core --test verify_all pgo_relink

echo "== block-engine equivalence battery (19 workloads x 9 variants) =="
cargo test -q --release -p om-sim --test block_equiv

echo "== trace smoke (om --trace-json -> omtrace check) =="
# One workload through the command-line pipeline with tracing on: the
# emitted chrome://tracing JSON must parse, spans must nest, and every
# enabled pass (plus the link phases and reconciling counters) must appear.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
cargo run --release -p om-workloads --bin genbench -- compress "$tracedir" --quick
cargo run --release -p om-codegen --bin mcc -- "$tracedir"/*.mc
cargo run --release -p om-core --bin om -- --level full-sched \
    --trace-json "$tracedir/trace.json" -o "$tracedir/compress.exe" \
    "$tracedir"/*.o "$tracedir/libstd.a"
cargo run --release -p om-obs --bin omtrace -- check "$tracedir/trace.json" \
    --require pipeline --require select --require pass.translate \
    --require pass.resolve --require pass.calls --require pass.convert \
    --require pass.nullify --require pass.resched --require emit \
    --require link --require link.layout --require link.image \
    --require-counter pipeline.runs --require-counter pipeline.image_bytes \
    --require-counter link.gat_slots

echo "== figure drift =="
scripts/bench.sh --refresh

echo "== CI-fleet smoke (bounded relink storm + socket round trip) =="
# ~100 measured relinks: enforces the 80% per-module hit-rate floor and
# byte-identity of every cached image against the one-shot pipeline.
cargo run --release -p om-bench --bin omfleet -- --smoke

echo "== scale smoke (one mid-scale point through the tool pipeline) =="
# A 256-module / 25k-procedure program end to end through the command-line
# tools: genbench --scale emits the sources, mcc compiles them one unit per
# source, and om links at full-sched with --verify. The figure harness
# gates the same workload through all three oracles per point (see the
# "scale" rows in figure drift above); this step proves the *standalone
# tool* path handles a multi-GAT-split program too.
scaledir=$(mktemp -d)
trap 'rm -rf "$tracedir" "$scaledir"' EXIT
cargo run --release -p om-workloads --bin genbench -- --scale 256 "$scaledir"
cargo run --release -p om-codegen --bin mcc -- "$scaledir"/*.mc
cargo run --release -p om-core --bin om -- --level full-sched --verify \
    -o "$scaledir/scale.exe" "$scaledir"/*.o "$scaledir/libstd.a"

echo "== scale fleet (single-module-edit invalidation at 256 modules) =="
# Enforces the 99% reuse floor (one edit must invalidate O(1 module)) and
# the eviction bound under a deliberately tiny cache.
cargo run --release -p om-bench --bin omfleet -- --scale 256 --quick

echo "== adversarial corpus (limit-straddling inputs, typed-error oracles) =="
cargo run --release -p om-bench --bin omfuzz -- --adversarial

echo "== differential fuzz ($seeds seeds) =="
cargo run --release -p om-bench --bin omfuzz -- --seeds "$seeds"

echo "== mutation kill gate ($mutants mutants vs MUTANTS_baseline.json) =="
# Fails if any class the baseline records as fully killed now escapes an
# oracle, or if the overall kill rate drops below the baseline's.
cargo run --release -p om-bench --bin omkill -- \
    --mutants "$mutants" --check MUTANTS_baseline.json

echo "CI OK"
