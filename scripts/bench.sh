#!/bin/sh
# Reproduces the paper's figures in --quick mode and diffs the deterministic
# rows against the committed baseline (BENCH_baseline.json). Timing rows
# (fig7, simsec) and the wall-clock/phase fields are wall-clock noise and
# excluded.
#
# Usage: scripts/bench.sh [--update|--refresh]
#   --update    rewrite BENCH_baseline.json from the current run
#   --refresh   diff as usual, then (only if every deterministic figure row
#               is byte-identical) copy the fresh run over the baseline so
#               its timing-only fields (fig7, simsec, wall/phase seconds)
#               track the current machine and engine
set -eu

cd "$(dirname "$0")/.."
baseline=BENCH_baseline.json
out=$(mktemp)
json=$(mktemp)
trap 'rm -f "$out" "$json"' EXIT

cargo run --release -p om-bench --bin reproduce -- all --quick --json "$json"

if [ "${1:-}" = "--update" ]; then
    cp "$json" "$baseline"
    echo "updated $baseline"
    exit 0
fi

# Deterministic rows only: every figure row carries a "bench" key; fig7 rows
# are build-time measurements, simsec rows are simulator wall time, fleet
# rows carry request latency/throughput, and scaletime rows are the
# wall-clock half of the scaling curve. The trailing array comma depends on
# which row happens to be last, so it is stripped before diffing.
filter() {
    grep '"bench"' "$1" | grep -v '"fig":"fig7"' | grep -v '"fig":"simsec"' \
        | grep -v '"fig":"fleet"' | grep -v '"fig":"scaletime"' | sed 's/,$//'
}

# Coverage: every variant the harness is supposed to measure must actually
# appear in the run — a silently skipped figure would otherwise shrink the
# diff instead of failing it.
for fig in fig3 fig4 fig5 fig6 gat pgo fleet simsec passes scale scaletime; do
    if ! grep -q "\"fig\":\"$fig\"" "$json"; then
        echo "FAIL: run produced no $fig rows" >&2
        exit 1
    fi
done
if ! grep '"fig":"pgo"' "$json" | grep -q '"pgo_cycles_each"'; then
    echo "FAIL: pgo rows are missing cycle fields" >&2
    exit 1
fi
if ! grep '"fig":"simsec"' "$json" | grep -q '"engine"'; then
    echo "FAIL: simsec rows are missing the engine field" >&2
    exit 1
fi
if ! grep '"fig":"fleet"' "$json" | grep -q '"byte_identical":true'; then
    echo "FAIL: fleet rows missing or not byte-identical" >&2
    exit 1
fi
if grep '"fig":"passes"' "$json" | grep -q '"reconciled":false'; then
    echo "FAIL: a passes row failed to reconcile with OmStats" >&2
    exit 1
fi
if grep '"fig":"fleet"' "$json" | grep -q '"byte_identical":false'; then
    echo "FAIL: a fleet relink served a non-identical image" >&2
    exit 1
fi
# Scale rows are oracle-gated in the harness itself (it panics rather than
# record an unverified point); re-check the recorded markers anyway so a
# harness regression cannot slip an ungated row into the baseline.
if ! grep '"fig":"scale"' "$json" | grep -q '"verified_variants":8'; then
    echo "FAIL: a scale row did not verify all 8 (mode x level) variants" >&2
    exit 1
fi
if grep '"fig":"scale"' "$json" | grep -Eq '"sampled_exact":false|"shared_identical":false'; then
    echo "FAIL: a scale row recorded a failed sampled/shared oracle" >&2
    exit 1
fi
if grep '"fig":"scale"' "$json" | grep -v '"edit_module_misses":1' | grep -q .; then
    echo "FAIL: a scale edit invalidated more than one module translation" >&2
    exit 1
fi

filter "$json" >"$out"
if ! filter "$baseline" | diff -u - "$out"; then
    echo "FAIL: figure rows drifted from $baseline" >&2
    echo "(run scripts/bench.sh --update if the change is intended)" >&2
    exit 1
fi
echo "OK: figure rows match $baseline"

if [ "${1:-}" = "--refresh" ]; then
    # The deterministic rows are byte-identical, so overwriting the baseline
    # only updates its timing fields.
    cp "$json" "$baseline"
    echo "refreshed timing fields in $baseline"
fi
